"""``python -m repro`` — compress, inspect, decompress, and query archives.

Subcommands::

    compress    generate a profile dataset and write a .utcq archive
                (multi-core via --workers; byte-identical to serial)
    info        print header, params, ratios, and provenance of a file
    decompress  decode an archive back to JSON lines
    query       where / when / range queries over a file-backed archive
    stream      streaming ingestion: replay a live GPS feed into an
                appendable segment archive, compact it, inspect it
    bench       run the hot-path microbenchmarks (bit I/O, map matching,
                TED base search, compression, StIU queries) and write
                BENCH_core_hotpaths.json — the perf trajectory file
                tracked at the repo root
    obs         telemetry: dump the process-wide metrics registry
                (Prometheus text or JSON), or trace one request through
                the sharded serving path and print its span tree with
                the plan / IPC / worker-decode / merge breakdown

``query`` and ``decompress`` need the road network the archive was
compressed against.  ``compress`` records the generating profile, seed,
and scale in the file's provenance block, and the other commands rebuild
the identical synthetic network from it; archives produced through the
library API can pass ``--profile/--dataset-seed/--network-scale``
explicitly instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import __version__
from .config import ConfigError
from .io.format import ArchiveFormatError, read_header
from .io.reader import FileBackedArchive

PROVENANCE_GENERATOR = "repro.load_dataset"


class CliError(SystemExit):
    """Operator-facing failure: one line on stderr, exit status 2.

    Subclasses :class:`SystemExit` so it propagates like one, but
    carries status 2 — distinguishing "the request cannot be served"
    (bad path, malformed input, corrupt archive) from a crash (1)
    and success (0), which is what scripts wrapping the CLI key on.
    """

    def __init__(self, message: str) -> None:
        self.message = f"error: {message}"
        print(self.message, file=sys.stderr)
        super().__init__(2)

    def __str__(self) -> str:
        return self.message


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        choices=("DK", "CD", "HZ"),
        help="dataset profile (overrides the archive's provenance)",
    )
    parser.add_argument(
        "--dataset-seed",
        type=int,
        help="generation seed (overrides the archive's provenance)",
    )
    parser.add_argument(
        "--network-scale",
        type=int,
        help="network grid scale (overrides the archive's provenance)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "UTCQ: compression and querying of uncertain trajectories "
            "in road networks"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compress = commands.add_parser(
        "compress",
        help="generate a dataset and compress it to a .utcq archive",
    )
    compress.add_argument("output", help="path of the archive to write")
    compress.add_argument(
        "--profile", choices=("DK", "CD", "HZ"), default="CD",
        help="dataset profile to generate (default: CD)",
    )
    compress.add_argument(
        "--count", type=int, default=200,
        help="number of uncertain trajectories (default: 200)",
    )
    compress.add_argument(
        "--dataset-seed", type=int, default=11,
        help="generation seed for network + trajectories (default: 11)",
    )
    compress.add_argument(
        "--network-scale", type=int, default=None,
        help="network grid scale (default: the profile's)",
    )
    compress.add_argument(
        "--workers", type=int, default=1,
        help="compression worker processes (default: 1 = serial; "
        "0 = one per core)",
    )
    compress.add_argument(
        "--shard-size", type=int, default=None,
        help="trajectories per work shard (default: auto)",
    )
    compress.add_argument(
        "--eta-distance", type=float, default=None,
        help="PDDP distance error bound (default: 1/128)",
    )
    compress.add_argument(
        "--eta-probability", type=float, default=None,
        help="PDDP probability error bound (default: the profile's)",
    )
    compress.add_argument(
        "--pivot-count", type=int, default=1,
        help="reference-selection pivot budget (default: 1)",
    )
    compress.add_argument(
        "--compressor-seed", type=int, default=17,
        help="seed for randomized pivot selection (default: 17)",
    )
    compress.add_argument(
        "--no-sidecar", action="store_true",
        help="skip writing the .stiu index sidecar next to the archive "
        "(queries against the file will rebuild the index on open)",
    )
    compress.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )

    info = commands.add_parser(
        "info", help="print header, params, and ratios of an archive"
    )
    info.add_argument("archive", help="path of a .utcq archive")
    info.add_argument(
        "--check", action="store_true",
        help="additionally verify every record's CRC-32",
    )
    info.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    decompress = commands.add_parser(
        "decompress", help="decode an archive back to JSON lines"
    )
    decompress.add_argument("archive", help="path of a .utcq archive")
    decompress.add_argument(
        "-o", "--output", default="-",
        help="output file (default: '-' = stdout)",
    )
    decompress.add_argument(
        "--limit", type=int, default=None,
        help="decode at most this many trajectories",
    )
    _add_dataset_arguments(decompress)

    query = commands.add_parser(
        "query", help="run a probabilistic query over an archive file"
    )
    kinds = query.add_subparsers(dest="kind", required=True)

    where = kinds.add_parser(
        "where", help="where was a trajectory at time t? (Definition 10)"
    )
    where.add_argument("archive")
    where.add_argument("--trajectory", type=int, required=True)
    where.add_argument("--time", type=int, required=True)
    where.add_argument("--alpha", type=float, default=0.2)
    where.add_argument("--json", action="store_true")
    _add_dataset_arguments(where)

    when = kinds.add_parser(
        "when", help="when did a trajectory pass a location? (Definition 11)"
    )
    when.add_argument("archive")
    when.add_argument("--trajectory", type=int, required=True)
    when.add_argument(
        "--edge", required=True, metavar="START,END",
        help="edge as 'start_vertex,end_vertex'",
    )
    when.add_argument(
        "--rd", type=float, default=0.5,
        help="relative distance along the edge in [0, 1] (default: 0.5)",
    )
    when.add_argument("--alpha", type=float, default=0.2)
    when.add_argument("--json", action="store_true")
    _add_dataset_arguments(when)

    range_ = kinds.add_parser(
        "range", help="which trajectories overlap a region at t? (Def. 12)"
    )
    range_.add_argument("archive")
    range_.add_argument(
        "--rect", required=True, metavar="MINX,MINY,MAXX,MAXY",
        help="query rectangle in network coordinates (use --rect=... "
        "when the first coordinate is negative)",
    )
    range_.add_argument("--time", type=int, required=True)
    range_.add_argument("--alpha", type=float, default=0.2)
    range_.add_argument("--json", action="store_true")
    _add_dataset_arguments(range_)

    batch = kinds.add_parser(
        "batch",
        help="run many queries at once through the batch engine, "
        "optionally across shards and worker processes",
    )
    batch.add_argument(
        "archives", nargs="+", metavar="archive",
        help="one or more .utcq shard files",
    )
    batch.add_argument(
        "-i", "--input", required=True,
        help="JSON file of query objects — an array or one object per "
        "line; '-' = stdin.  Objects look like "
        '{"kind": "where", "trajectory": 3, "time": 41000, "alpha": 0.2}, '
        '{"kind": "when", "trajectory": 3, "edge": [5, 6], "rd": 0.5, '
        '"alpha": 0.2}, '
        '{"kind": "range", "rect": [0, 0, 900, 900], "time": 41000, '
        '"alpha": 0.2}',
    )
    batch.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for shard-parallel execution "
        "(default: 1 = in-process)",
    )
    batch.add_argument(
        "--json", action="store_true",
        help="emit one JSON result line per query",
    )
    _add_dataset_arguments(batch)

    serve_bench = commands.add_parser(
        "serve-bench",
        help="run the query-serving benchmark (batch throughput, "
        "sharded throughput, warm archive opens) and record the "
        "results in BENCH_query_throughput.json",
    )
    serve_bench.add_argument(
        "--quick", action="store_true",
        help="scaled-down workload (CI smoke; numbers are noisier)",
    )
    serve_bench.add_argument(
        "--mode", choices=("legacy", "fast", "both"), default="fast",
        help="legacy = pre-sidecar/pre-batch code paths (the 'before' "
        "row), fast = sidecar + batch engine (default), both = run and "
        "record the two back to back",
    )
    serve_bench.add_argument(
        "--label", default="current",
        help="label recorded with each row (default: current)",
    )
    serve_bench.add_argument(
        "-o", "--output", default="BENCH_query_throughput.json",
        help="results file to write (default: BENCH_query_throughput.json "
        "in the current directory — the repo root by convention)",
    )
    serve_bench.add_argument(
        "--append", action="store_true",
        help="keep existing rows in the output file and add these "
        "after them (how before/after pairs accumulate)",
    )
    serve_bench.add_argument(
        "--workers", type=int, default=4,
        help="process-pool size for the sharded scenario (default: 4)",
    )
    serve_bench.add_argument(
        "--transport", choices=("pickle", "shm"), default=None,
        help="worker result transport for the sharded scenario: shm = "
        "shared-memory slabs with descriptor return (default), pickle "
        "= the classic pickled-result pipe; default comes from "
        "REPRO_TRANSPORT, else shm",
    )
    serve_bench.add_argument(
        "--hotcache-size", type=int, default=None, metavar="N",
        help="entries in the Zipf-aware hot-answer cache in front of "
        "the decode layer (0 disables; default: REPRO_HOTCACHE, else 0)",
    )
    serve_bench.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="shard sub-batches kept in flight per request (default: "
        "REPRO_DISPATCH_WINDOW, else 8)",
    )
    serve_bench.add_argument(
        "--decode-cache-trajectories", type=int, default=None, metavar="N",
        help="DecodeSpanCache per-trajectory section capacity "
        "(default: REPRO_DECODE_CACHE_TRAJECTORIES, else 1024)",
    )
    serve_bench.add_argument(
        "--decode-cache-instances", type=int, default=None, metavar="N",
        help="DecodeSpanCache per-instance section capacity "
        "(default: REPRO_DECODE_CACHE_INSTANCES, else 8192)",
    )
    serve_bench.add_argument(
        "--frontier-cache", type=int, default=None, metavar="N",
        help="matcher FrontierCache capacity "
        "(default: REPRO_FRONTIER_CACHE, else 512)",
    )
    serve_bench.add_argument(
        "--chaos", action="store_true",
        help="instead of the throughput scenarios, serve the request "
        "stream through the supervised QueryService while injecting "
        "worker kills, response delays, and one on-disk shard "
        "corruption; records availability and p50/p99 latency",
    )
    serve_bench.add_argument(
        "--duration", type=float, default=30.0,
        help="chaos mode: seconds to keep the service under load "
        "(default: 30)",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=3,
        help="chaos mode: concurrent client threads (default: 3)",
    )
    serve_bench.add_argument(
        "--deadline", type=float, default=5.0,
        help="chaos mode: per-request deadline in seconds (default: 5)",
    )
    serve_bench.add_argument(
        "--wire", action="store_true",
        help="drive the workload through the TCP wire front-end "
        "(loopback WireServer + WireClient) instead of in-process "
        "calls; alone it records a loopback-vs-in-process throughput "
        "comparison, with --chaos the request stream crosses a "
        "ChaosTCPProxy injecting disconnects, truncation, corruption, "
        "stalls, and slow-loris connections",
    )
    serve_bench.add_argument(
        "--availability-floor", type=float, default=None, metavar="PCT",
        help="chaos mode: fail (exit 2) when availability lands below "
        "PCT percent (the CI gate)",
    )
    _add_telemetry_arguments(serve_bench)

    serve = commands.add_parser(
        "serve",
        help="serve queries over TCP: a hardened asyncio front-end "
        "(framed CRC-checked protocol, read deadlines, connection "
        "limits, pipelining backpressure) over the supervised "
        "QueryService; SIGTERM drains gracefully",
    )
    serve.add_argument(
        "archives", nargs="+", help="shard archives (.utcq) to serve"
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="address to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (default: 0 = kernel-assigned, printed "
        "on startup)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="shard worker processes (default: 2)",
    )
    serve.add_argument(
        "--deadline", type=float, default=5.0,
        help="per-request deadline in seconds (default: 5)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=64,
        help="requests admitted concurrently before shedding "
        "(default: 64)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=64,
        help="concurrent TCP connections before refusing (default: 64)",
    )
    serve.add_argument(
        "--pipeline-window", type=int, default=8,
        help="in-flight requests per connection before the server "
        "stops reading that socket (default: 8)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="seconds a connection may sit between frames before it "
        "is closed (default: 300)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=10.0,
        help="seconds a frame body may take to arrive before the "
        "connection is closed — the slow-loris bound (default: 10)",
    )
    serve.add_argument(
        "--transport", choices=("pickle", "shm"), default=None,
        help="worker result transport (default: REPRO_TRANSPORT, "
        "else shm)",
    )
    serve.add_argument(
        "--hotcache-size", type=int, default=None, metavar="N",
        help="hot-answer cache entries (0 disables; default: "
        "REPRO_HOTCACHE, else 0)",
    )
    serve.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="shard sub-batches in flight per request (default: "
        "REPRO_DISPATCH_WINDOW, else 8)",
    )
    _add_dataset_arguments(serve)
    _add_telemetry_arguments(serve)

    bench = commands.add_parser(
        "bench",
        help="run the hot-path microbenchmarks and record the results",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="scaled-down workloads (CI smoke; numbers are noisier)",
    )
    bench.add_argument(
        "-o", "--output", default="BENCH_core_hotpaths.json",
        help="results file to write (default: BENCH_core_hotpaths.json "
        "in the current directory — the repo root by convention)",
    )
    bench.add_argument(
        "--label", default="current",
        help="label recorded with each row (default: current)",
    )
    bench.add_argument(
        "--append", action="store_true",
        help="keep existing rows in the output file and add these "
        "after them (how before/after pairs accumulate)",
    )

    stream = commands.add_parser(
        "stream",
        help="streaming ingestion: replay a feed, compact, inspect",
    )
    actions = stream.add_subparsers(dest="action", required=True)

    replay_ = actions.add_parser(
        "replay",
        help="replay a synthetic fleet feed into an appendable archive",
    )
    replay_.add_argument(
        "directory", help="stream-archive directory to create or append to"
    )
    replay_.add_argument(
        "--profile", choices=("DK", "CD", "HZ"), default="CD",
        help="dataset profile of the synthetic feed (default: CD)",
    )
    replay_.add_argument(
        "--count", type=int, default=50,
        help="number of vehicles in the feed (default: 50)",
    )
    replay_.add_argument(
        "--dataset-seed", type=int, default=11,
        help="generation seed for network + feeds (default: 11)",
    )
    replay_.add_argument(
        "--network-scale", type=int, default=None,
        help="network grid scale (default: the profile's)",
    )
    replay_.add_argument(
        "--speed", type=float, default=0.0,
        help="replay pacing: N = N x real time, 0 = as fast as "
        "possible (default: 0)",
    )
    replay_.add_argument(
        "--gap-timeout", type=float, default=300.0,
        help="seconds of per-vehicle silence that end a trip "
        "(default: 300)",
    )
    replay_.add_argument(
        "--max-duration", type=float, default=4 * 3600.0,
        help="hard cap on one trip's time span in seconds "
        "(default: 14400)",
    )
    replay_.add_argument(
        "--segment-size", type=int, default=64,
        help="trips per .utcq segment file (default: 64)",
    )
    replay_.add_argument(
        "--noise-sigma", type=float, default=15.0,
        help="GPS noise of the synthetic feed in meters (default: 15)",
    )
    replay_.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )

    compact_ = actions.add_parser(
        "compact",
        help="merge segments: into one canonical .utcq archive (with "
        "OUTPUT), or in place under an LSM policy (--policy/--daemon)",
    )
    compact_.add_argument("directory", help="stream-archive directory")
    compact_.add_argument(
        "output", nargs="?", default=None,
        help="path of the canonical archive to write (omit to run "
        "in-place policy compaction instead)",
    )
    compact_.add_argument(
        "--policy", choices=("size-tiered", "leveled"), default=None,
        help="in-place merge policy (default when no OUTPUT: size-tiered)",
    )
    compact_.add_argument(
        "--min-merge", type=int, default=4,
        help="size-tiered: segments per merge, minimum (default: 4)",
    )
    compact_.add_argument(
        "--max-merge", type=int, default=8,
        help="size-tiered: segments per merge, maximum (default: 8)",
    )
    compact_.add_argument(
        "--fanout", type=int, default=4,
        help="leveled: segments per level before promotion (default: 4)",
    )
    compact_.add_argument(
        "--daemon", action="store_true",
        help="keep compacting on a background thread for --duration "
        "seconds instead of draining once and exiting",
    )
    compact_.add_argument(
        "--interval", type=float, default=0.5,
        help="daemon poll interval in seconds (default: 0.5)",
    )
    compact_.add_argument(
        "--duration", type=float, default=10.0,
        help="how long the daemon runs in seconds (default: 10)",
    )
    _add_telemetry_arguments(compact_)

    gc_ = actions.add_parser(
        "gc",
        help="retention: drop whole segments older than a cutoff",
    )
    gc_.add_argument("directory", help="stream-archive directory")
    cutoff = gc_.add_mutually_exclusive_group(required=True)
    cutoff.add_argument(
        "--drop-before", type=int, default=None, metavar="T",
        help="drop segments whose newest timestamp is before T",
    )
    cutoff.add_argument(
        "--ttl", type=int, default=None, metavar="SECONDS",
        help="drop segments older than SECONDS relative to the newest "
        "timestamp in the archive (the stream clock)",
    )
    gc_.add_argument(
        "--dry-run", action="store_true",
        help="report what would be dropped without touching anything",
    )

    stats_ = actions.add_parser(
        "stats", help="summarize a stream archive's manifest"
    )
    stats_.add_argument("directory", help="stream-archive directory")
    stats_.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    obs = commands.add_parser(
        "obs",
        help="telemetry: dump the process metrics registry, or trace "
        "one sharded request end to end",
    )
    obs_actions = obs.add_subparsers(dest="action", required=True)

    dump_ = obs_actions.add_parser(
        "dump",
        help="export the process-wide metrics registry (what every "
        "instrumented subsystem has recorded so far in this process)",
    )
    dump_.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="output format (default: prometheus text exposition)",
    )
    dump_.add_argument(
        "-o", "--out", default=None,
        help="write to this path instead of stdout",
    )

    trace_ = obs_actions.add_parser(
        "trace",
        help="run one traced request through a real sharded "
        "QueryService and print the span tree plus the plan/IPC/"
        "worker/merge breakdown (the ROADMAP item 1 instrument)",
    )
    trace_.add_argument(
        "--full", action="store_true",
        help="full-size serving fixture (default: the quick one)",
    )
    trace_.add_argument(
        "--workers", type=int, default=4,
        help="process-pool size for the sharded engine (default: 4)",
    )
    trace_.add_argument(
        "--queries", type=int, default=64,
        help="batch size of the traced request (default: 64)",
    )
    trace_.add_argument(
        "--repeats", type=int, default=3,
        help="traced attempts; the fastest request is reported "
        "(default: 3)",
    )
    trace_.add_argument(
        "--transport", choices=("pickle", "shm"), default=None,
        help="worker result transport to trace (default: "
        "REPRO_TRANSPORT, else shm)",
    )
    trace_.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="shard sub-batches in flight per request (default: "
        "REPRO_DISPATCH_WINDOW, else 8)",
    )
    trace_.add_argument(
        "--json", action="store_true",
        help="emit the span tree and breakdown as JSON instead of "
        "the rendered tree",
    )
    trace_.add_argument(
        "--min-wall-ms", type=float, default=0.0,
        help="hide spans shorter than this in the rendered tree "
        "(default: show all)",
    )

    return parser


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="after the run, write the metrics this command produced "
        "(registry delta) as Prometheus text to PATH",
    )
    parser.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="emit structured JSON logs to PATH ('-' for stderr); "
        "worker subprocesses inherit the sink via REPRO_LOG_JSON",
    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _network_from_provenance(archive: FileBackedArchive, args):
    """Rebuild the road network an archive was compressed against."""
    from .network.generators import dataset_network
    from .trajectories.datasets import profile as dataset_profile

    provenance = archive.provenance
    profile_name = args.profile or provenance.get("profile")
    seed = (
        args.dataset_seed
        if args.dataset_seed is not None
        else _int_or_none(provenance.get("dataset_seed"))
    )
    scale = (
        args.network_scale
        if args.network_scale is not None
        else _int_or_none(provenance.get("network_scale"))
    )
    if profile_name is None or seed is None:
        raise CliError(
            "the archive carries no dataset provenance; pass "
            "--profile and --dataset-seed (and --network-scale) explicitly"
        )
    if scale is None:
        scale = dataset_profile(profile_name).network_scale
    return dataset_network(profile_name, scale=scale, seed=seed)


def _int_or_none(text: str | None) -> int | None:
    return None if text is None else int(text)


def _parse_pair(text: str, what: str) -> tuple[int, int]:
    parts = text.split(",")
    if len(parts) != 2:
        raise CliError(f"{what} must be 'a,b', got {text!r}")
    return int(parts[0]), int(parts[1])


def _open_archive(path: str) -> FileBackedArchive:
    try:
        return FileBackedArchive.open(path)
    except FileNotFoundError:
        raise CliError(f"no such archive: {path}")
    except ArchiveFormatError as error:
        raise CliError(f"{path}: {error}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_compress(args) -> int:
    import os

    from .pipeline.batch import compress_parallel, default_worker_count
    from .trajectories.datasets import load_dataset, profile as dataset_profile

    # fail before compressing, not after
    parent = os.path.dirname(os.path.abspath(args.output)) or "."
    if not os.path.isdir(parent):
        raise CliError(f"output directory does not exist: {parent}")

    prof = dataset_profile(args.profile)
    scale = (
        args.network_scale
        if args.network_scale is not None
        else prof.network_scale
    )
    network, trajectories = load_dataset(
        args.profile,
        args.count,
        seed=args.dataset_seed,
        network_scale=scale,
    )
    workers = default_worker_count() if args.workers == 0 else args.workers

    def progress(done: int, total: int) -> None:
        print(f"\rcompressing {done}/{total} trajectories", end="", flush=True)

    archive, report = compress_parallel(
        network,
        trajectories,
        default_interval=prof.default_interval,
        workers=workers,
        shard_size=args.shard_size,
        progress=None if args.quiet else progress,
        eta_distance=(
            args.eta_distance if args.eta_distance is not None else 1 / 128
        ),
        eta_probability=(
            args.eta_probability
            if args.eta_probability is not None
            else prof.default_eta_probability
        ),
        pivot_count=args.pivot_count,
        seed=args.compressor_seed,
    )
    if not args.quiet:
        print()
    provenance = {
        "generator": PROVENANCE_GENERATOR,
        "profile": prof.name,
        "dataset_seed": str(args.dataset_seed),
        "network_scale": str(scale),
        "trajectory_count": str(args.count),
    }
    if args.no_sidecar:
        size = archive.save(args.output, provenance=provenance)
        sidecar_path = None
    else:
        from .pipeline.batch import save_archive_with_index

        size, sidecar_path = save_archive_with_index(
            archive, args.output, network, provenance=provenance
        )
    if not args.quiet:
        row = archive.stats.as_row()
        ratios = ", ".join(f"{key} {value:.2f}" for key, value in row.items())
        print(
            f"wrote {args.output}: {size} bytes on disk, "
            f"{report.trajectory_count} trajectories / "
            f"{report.instance_count} instances in "
            f"{report.elapsed_seconds:.2f}s "
            f"({report.workers} worker{'s' if report.workers != 1 else ''})"
        )
        print(f"compression ratios — {ratios}")
        if sidecar_path is not None:
            import os as _os

            print(
                f"wrote {sidecar_path}: StIU index sidecar, "
                f"{_os.path.getsize(sidecar_path)} bytes (warm query opens)"
            )
    return 0


def cmd_info(args) -> int:
    import os

    try:
        stream = open(args.archive, "rb")
    except FileNotFoundError:
        raise CliError(f"no such archive: {args.archive}")
    checked = False
    with stream:
        try:
            header = read_header(stream)
            if args.check:
                # reuse the open stream + parsed header for the CRC walk
                archive = FileBackedArchive(stream, header, cache_size=1)
                for trajectory_id in archive.trajectory_ids():
                    archive.trajectory(trajectory_id)  # raises on mismatch
                checked = True
        except ArchiveFormatError as error:
            raise CliError(f"{args.archive}: {error}")

    stats = header.stats
    if args.json:
        import math

        # a component ratio is inf when its compressed size is 0 bits;
        # emit null rather than the non-standard `Infinity` token
        ratios = {
            key: (value if math.isfinite(value) else None)
            for key, value in stats.as_row().items()
        }
        document = {
            "path": args.archive,
            "file_bytes": os.path.getsize(args.archive),
            "format_version": header.version,
            "trajectory_count": header.trajectory_count,
            "instance_count": header.instance_count,
            "params": {
                "eta_distance": header.params.eta_distance,
                "eta_probability": header.params.eta_probability,
                "default_interval": header.params.default_interval,
                "symbol_width": header.params.symbol_width,
                "t0_bits": header.params.t0_bits,
                "pivot_count": header.params.pivot_count,
            },
            "ratios": ratios,
            "original_bits": stats.original.total,
            "compressed_bits": stats.compressed.total,
            "provenance": header.provenance,
            "crc_checked": checked,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    print(f"{args.archive}: UTCQ archive, format v{header.version}")
    print(
        f"  trajectories {header.trajectory_count}, "
        f"instances {header.instance_count}, "
        f"{os.path.getsize(args.archive)} bytes on disk"
    )
    print(
        f"  params: eta_d={header.params.eta_distance:g} "
        f"eta_p={header.params.eta_probability:g} "
        f"Ts={header.params.default_interval}s "
        f"symbol_width={header.params.symbol_width} "
        f"t0_bits={header.params.t0_bits} "
        f"pivots={header.params.pivot_count}"
    )
    row = stats.as_row()
    print(
        "  ratios: "
        + ", ".join(f"{key} {value:.2f}" for key, value in row.items())
    )
    print(
        f"  payload: {stats.original.total} bits -> "
        f"{stats.compressed.total} bits"
    )
    if header.provenance:
        pairs = ", ".join(
            f"{key}={value}" for key, value in sorted(header.provenance.items())
        )
        print(f"  provenance: {pairs}")
    if checked:
        print("  integrity: all record CRCs OK")
    return 0


def cmd_decompress(args) -> int:
    from .core.decoder import decode_trajectory

    with _open_archive(args.archive) as archive:
        network = _network_from_provenance(archive, args)
        out = sys.stdout if args.output == "-" else open(args.output, "w")
        try:
            for position, trajectory_id in enumerate(archive.trajectory_ids()):
                if args.limit is not None and position >= args.limit:
                    break
                compressed = archive.trajectory(trajectory_id)
                decoded = decode_trajectory(
                    network, compressed, archive.params
                )
                record = {
                    "trajectory_id": decoded.trajectory_id,
                    "times": list(decoded.times),
                    "instances": [
                        {
                            "probability": instance.probability,
                            "path": [list(edge) for edge in instance.path],
                            "locations": [
                                {
                                    "edge": list(location.edge),
                                    "ndist": location.ndist,
                                }
                                for location in instance.locations
                            ],
                        }
                        for instance in decoded.instances
                    ],
                }
                out.write(json.dumps(record) + "\n")
        finally:
            if out is not sys.stdout:
                out.close()
    return 0


def _query_processor(archive: FileBackedArchive, args):
    from .query.queries import UTCQQueryProcessor
    from .query.sidecar import load_index
    from .query.stiu import StIUIndex

    network = _network_from_provenance(archive, args)
    # warm path: the .stiu sidecar written at compress/compact time
    index = load_index(network, archive, args.archive)
    if index is None:
        index = StIUIndex(network, archive)
    return UTCQQueryProcessor(network, archive, index)


def cmd_query(args) -> int:
    try:
        if args.kind == "batch":
            return _run_query_batch(args)
        return _run_query(args)
    except KeyError as error:
        raise CliError(f"{error.args[0]}")


def _load_batch_queries(source: str):
    from .query.engine import QueryEngineError, query_from_dict

    if source == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(source, "r", encoding="utf-8") as stream:
                text = stream.read()
        except FileNotFoundError:
            raise CliError(f"no such query file: {source}")
    text = text.strip()
    if not text:
        raise CliError("the query input is empty")
    try:
        if text.startswith("["):
            documents = json.loads(text)
        else:
            documents = [
                json.loads(line) for line in text.splitlines() if line.strip()
            ]
    except json.JSONDecodeError as error:
        raise CliError(f"bad query JSON: {error}")
    try:
        return documents, [query_from_dict(doc) for doc in documents]
    except QueryEngineError as error:
        raise CliError(f"{error}")


def _run_query_batch(args) -> int:
    import os

    from .query.engine import (
        QueryEngineError,
        ShardedQueryEngine,
        result_to_jsonable,
    )

    documents, queries = _load_batch_queries(args.input)
    for path in args.archives:
        if not os.path.exists(path):
            raise CliError(f"no such archive: {path}")
    # resolve the network once from the first shard (CLI overrides win)
    with _open_archive(args.archives[0]) as first:
        network = _network_from_provenance(first, args)
    try:
        with ShardedQueryEngine(
            args.archives, network=network, workers=args.workers
        ) as engine:
            results = engine.run(queries)
    except QueryEngineError as error:
        raise CliError(f"{error}")
    if args.json:
        for query, result in zip(queries, results):
            print(json.dumps(result_to_jsonable(query, result)))
    else:
        hits = sum(1 for result in results if result)
        print(
            f"{len(queries)} queries over {len(args.archives)} "
            f"shard{'s' if len(args.archives) != 1 else ''} "
            f"({args.workers} worker{'s' if args.workers != 1 else ''}): "
            f"{hits} with non-empty results"
        )
        for position, (document, result) in enumerate(
            zip(documents, results)
        ):
            print(f"  [{position}] {document.get('kind')}: {len(result)} result(s)")
    return 0


def _run_query(args) -> int:
    with _open_archive(args.archive) as archive:
        processor = _query_processor(archive, args)
        if args.kind == "where":
            results = processor.where(args.trajectory, args.time, args.alpha)
            if args.json:
                print(
                    json.dumps(
                        [
                            {
                                "instance": r.instance_index,
                                "edge": list(r.edge),
                                "ndist": r.ndist,
                                "probability": r.probability,
                            }
                            for r in results
                        ]
                    )
                )
            else:
                if not results:
                    print("no instance qualifies")
                for r in results:
                    print(
                        f"instance {r.instance_index}: edge "
                        f"{r.edge[0]} -> {r.edge[1]} at {r.ndist:.1f} m "
                        f"(p={r.probability:.3f})"
                    )
        elif args.kind == "when":
            edge = _parse_pair(args.edge, "--edge")
            results = processor.when(
                args.trajectory, edge, args.rd, args.alpha
            )
            if args.json:
                print(
                    json.dumps(
                        [
                            {
                                "instance": r.instance_index,
                                "time": r.time,
                                "probability": r.probability,
                            }
                            for r in results
                        ]
                    )
                )
            else:
                if not results:
                    print("no passing time qualifies")
                for r in results:
                    print(
                        f"instance {r.instance_index}: t={r.time:.1f}s "
                        f"(p={r.probability:.3f})"
                    )
        else:  # range
            from .network.grid import Rect

            parts = args.rect.split(",")
            if len(parts) != 4:
                raise CliError(
                    f"--rect must be 'minx,miny,maxx,maxy', "
                    f"got {args.rect!r}"
                )
            rect = Rect(*(float(p) for p in parts))
            results = processor.range(rect, args.time, args.alpha)
            if args.json:
                print(json.dumps(results))
            else:
                if not results:
                    print("no trajectory qualifies")
                for trajectory_id in results:
                    print(f"trajectory {trajectory_id}")
    return 0


def _telemetry_begin(args):
    """Honor ``--log-json`` and take the ``--metrics-out`` baseline.

    Returns the registry snapshot to delta against after the run (or
    None when ``--metrics-out`` was not given).  ``--log-json`` is
    exported as ``REPRO_LOG_JSON`` so worker subprocesses spawned by
    the run inherit the same sink.
    """
    import os

    from .obs import log as obs_log
    from .obs import metrics as obs_metrics

    if getattr(args, "log_json", None):
        obs_log.configure(args.log_json)
        os.environ["REPRO_LOG_JSON"] = args.log_json
    if getattr(args, "metrics_out", None):
        return obs_metrics.get_registry().snapshot()
    return None


def _telemetry_end(args, baseline) -> None:
    """Write the run's metrics delta as Prometheus text."""
    from .obs import metrics as obs_metrics

    if not getattr(args, "metrics_out", None):
        return
    delta = obs_metrics.snapshot_delta(
        obs_metrics.get_registry().snapshot(), baseline or {}
    )
    try:
        with open(args.metrics_out, "w", encoding="utf-8") as stream:
            stream.write(obs_metrics.render_prometheus(delta))
    except OSError as error:
        raise CliError(f"cannot write {args.metrics_out}: {error}")
    print(
        f"wrote {args.metrics_out} "
        f"({len(delta['metrics'])} series, Prometheus text)"
    )


def _apply_cache_size_flags(args) -> None:
    """Export the cache-size flags as their REPRO_* variables, so the
    capacities reach every construction site — including spawned pool
    workers, which inherit the environment."""
    for flag, variable in (
        ("decode_cache_trajectories", "REPRO_DECODE_CACHE_TRAJECTORIES"),
        ("decode_cache_instances", "REPRO_DECODE_CACHE_INSTANCES"),
        ("frontier_cache", "REPRO_FRONTIER_CACHE"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            os.environ[variable] = str(value)


def cmd_serve_bench(args) -> int:
    from .workloads.query_bench import run_query_bench, write_bench_json
    from .workloads.reporting import render_table

    _apply_cache_size_flags(args)
    if args.wire and args.chaos:
        return _serve_bench_wire_chaos(args)
    if args.wire:
        return _serve_bench_wire(args)
    if args.chaos:
        return _serve_bench_chaos(args)
    baseline = _telemetry_begin(args)
    if args.mode == "both":
        runs = [
            (f"{args.label}-legacy", "legacy", args.append),
            (f"{args.label}-fast", "fast", True),
        ]
    else:
        runs = [(args.label, args.mode, args.append)]
    rows: list[list] = []
    mismatch_total = 0
    for label, mode, append in runs:
        try:
            results = run_query_bench(
                mode=mode,
                quick=args.quick,
                workers=args.workers,
                transport=args.transport,
                hotcache_entries=args.hotcache_size,
                dispatch_window=args.window,
            )
        except ValueError as error:
            raise CliError(str(error))
        mismatch_total += sum(
            int(result.rate)
            for result in results
            if result.name == "sharded_oracle_mismatches"
        )
        try:
            rows = write_bench_json(
                results, args.output, label=label, append=append
            )
        except OSError as error:
            raise CliError(f"cannot write {args.output}: {error}")
    print(
        render_table(
            f"query-serving benchmarks ({'quick' if args.quick else 'full'} "
            f"workload, mode={args.mode})",
            ["label", "benchmark", "unit", "work", "seconds", "rate"],
            rows,
        )
    )
    print(f"wrote {args.output} ({len(rows)} rows)")
    _telemetry_end(args, baseline)
    if mismatch_total:
        raise CliError(
            f"{mismatch_total} sharded answers did not match the "
            f"single-archive reference"
        )
    return 0


def _serve_bench_chaos(args) -> int:
    from .workloads.query_bench import run_chaos_bench, write_bench_json
    from .workloads.reporting import render_table

    baseline = _telemetry_begin(args)
    try:
        results, summary = run_chaos_bench(
            duration=args.duration,
            clients=args.clients,
            quick=args.quick,
            deadline=args.deadline,
            workers=args.workers,
            transport=args.transport,
            hotcache_entries=args.hotcache_size,
        )
    except ValueError as error:
        raise CliError(str(error))
    try:
        rows = write_bench_json(
            results, args.output, label=args.label, append=args.append
        )
    except OSError as error:
        raise CliError(f"cannot write {args.output}: {error}")
    print(
        render_table(
            f"chaos serving benchmark ({'quick' if args.quick else 'full'} "
            f"workload, {summary['duration']}s, {args.clients} clients)",
            ["label", "benchmark", "unit", "work", "seconds", "rate"],
            rows,
        )
    )
    print(
        f"availability {summary['availability_percent']}% over "
        f"{summary['requests']} requests "
        f"(p50 {summary['p50_ms']}ms, p99 {summary['p99_ms']}ms); "
        f"outcomes: {summary['outcomes']}; "
        f"faults: {summary['faults_injected']}; "
        f"mismatches: {summary['result_mismatches']}"
    )
    print(f"wrote {args.output} ({len(rows)} rows)")
    _telemetry_end(args, baseline)
    if summary["result_mismatches"]:
        raise CliError(
            f"{summary['result_mismatches']} completed results did not "
            f"match the healthy-engine reference"
        )
    _check_availability_floor(args, summary)
    return 0


def _check_availability_floor(args, summary: dict) -> None:
    floor = getattr(args, "availability_floor", None)
    if floor is None:
        return
    availability = summary["availability_percent"]
    if availability < floor:
        raise CliError(
            f"availability {availability}% is below the required "
            f"floor of {floor}%"
        )


def _serve_bench_wire(args) -> int:
    """Loopback wire throughput vs the same workload in-process."""
    from .workloads.query_bench import run_wire_bench, write_bench_json
    from .workloads.reporting import render_table

    baseline = _telemetry_begin(args)
    try:
        results, summary = run_wire_bench(
            quick=args.quick,
            workers=args.workers,
            transport=args.transport,
            hotcache_entries=args.hotcache_size,
            dispatch_window=args.window,
        )
    except ValueError as error:
        raise CliError(str(error))
    try:
        rows = write_bench_json(
            results, args.output, label=args.label, append=args.append
        )
    except OSError as error:
        raise CliError(f"cannot write {args.output}: {error}")
    print(
        render_table(
            f"wire serving benchmark ({'quick' if args.quick else 'full'} "
            f"workload, loopback TCP vs in-process)",
            ["label", "benchmark", "unit", "work", "seconds", "rate"],
            rows,
        )
    )
    print(
        f"loopback {summary['wire_qps']} q/s vs in-process "
        f"{summary['inprocess_qps']} q/s "
        f"({summary['overhead_percent']}% wire overhead); "
        f"mismatches: {summary['result_mismatches']}"
    )
    print(f"wrote {args.output} ({len(rows)} rows)")
    _telemetry_end(args, baseline)
    if summary["result_mismatches"]:
        raise CliError(
            f"{summary['result_mismatches']} wire answers did not match "
            f"the in-process reference"
        )
    return 0


def _serve_bench_wire_chaos(args) -> int:
    """Chaos through the network: client -> ChaosTCPProxy -> WireServer
    -> QueryService, with the full worker/shard chaos underneath."""
    from .workloads.query_bench import run_wire_chaos_bench, write_bench_json
    from .workloads.reporting import render_table

    baseline = _telemetry_begin(args)
    try:
        results, summary = run_wire_chaos_bench(
            duration=args.duration,
            clients=args.clients,
            quick=args.quick,
            deadline=args.deadline,
            workers=args.workers,
            transport=args.transport,
            hotcache_entries=args.hotcache_size,
        )
    except ValueError as error:
        raise CliError(str(error))
    try:
        rows = write_bench_json(
            results, args.output, label=args.label, append=args.append
        )
    except OSError as error:
        raise CliError(f"cannot write {args.output}: {error}")
    print(
        render_table(
            f"wire chaos benchmark ({'quick' if args.quick else 'full'} "
            f"workload, {summary['duration']}s, {args.clients} clients "
            f"through ChaosTCPProxy)",
            ["label", "benchmark", "unit", "work", "seconds", "rate"],
            rows,
        )
    )
    print(
        f"availability {summary['availability_percent']}% over "
        f"{summary['requests']} requests "
        f"(p50 {summary['p50_ms']}ms, p99 {summary['p99_ms']}ms); "
        f"outcomes: {summary['outcomes']}; "
        f"network faults: {summary['network_faults']}; "
        f"loris connections reaped: {summary['loris_reaped']}; "
        f"mismatches: {summary['result_mismatches']}"
    )
    print(f"wrote {args.output} ({len(rows)} rows)")
    _telemetry_end(args, baseline)
    if summary["result_mismatches"]:
        raise CliError(
            f"{summary['result_mismatches']} completed results did not "
            f"match the healthy-engine reference"
        )
    _check_availability_floor(args, summary)
    return 0


def cmd_serve(args) -> int:
    """Run the wire front-end until SIGTERM/SIGINT, then drain."""
    import asyncio
    import signal

    from .query.engine import QueryEngineError
    from .serve import (
        QueryService,
        ServiceConfig,
        WireServer,
        WireServerConfig,
    )

    for path in args.archives:
        if not os.path.exists(path):
            raise CliError(f"no such archive: {path}")
    with _open_archive(args.archives[0]) as first:
        network = _network_from_provenance(first, args)
    baseline = _telemetry_begin(args)
    try:
        wire_config = WireServerConfig(
            max_connections=args.max_connections,
            pipeline_window=args.pipeline_window,
            idle_timeout=args.idle_timeout,
            read_timeout=args.read_timeout,
        )
    except ValueError as error:
        raise CliError(str(error))
    try:
        service = QueryService(
            args.archives,
            network=network,
            workers=args.workers,
            config=ServiceConfig(
                deadline=args.deadline,
                max_in_flight=args.max_in_flight,
                transport=args.transport,
                hotcache_entries=args.hotcache_size,
                dispatch_window=args.window,
            ),
        )
    except (QueryEngineError, ValueError) as error:
        raise CliError(str(error))

    async def _serve() -> bool:
        loop = asyncio.get_running_loop()
        server = WireServer(
            service, host=args.host, port=args.port, config=wire_config
        )
        host, port = await server.start()
        print(
            f"serving {len(args.archives)} shard"
            f"{'s' if len(args.archives) != 1 else ''} on {host}:{port} "
            f"({args.workers} workers, deadline {args.deadline}s); "
            f"SIGTERM drains",
            flush=True,
        )
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("drain: stopped accepting, waiting for in-flight "
              "requests", flush=True)
        clean = await server.drain()
        await server.aclose()
        return clean

    try:
        clean = asyncio.run(_serve())
    finally:
        service.drain()
    snapshot = service.telemetry()
    requests = snapshot.get("service", {})
    admission = snapshot.get("admission", {})
    shed = admission.get("shed_in_flight", 0) + admission.get(
        "shed_rate_limited", 0
    )
    print(
        f"drained {'cleanly' if clean else 'with requests abandoned'}; "
        f"served {requests.get('requests', 0)} requests "
        f"({requests.get('completed', 0)} completed, {shed} shed)"
    )
    _telemetry_end(args, baseline)
    return 0


def cmd_obs(args) -> int:
    handlers = {"dump": _obs_dump, "trace": _obs_trace}
    return handlers[args.action](args)


def _obs_dump(args) -> int:
    from .obs import metrics as obs_metrics

    registry = obs_metrics.get_registry()
    text = (
        registry.to_json()
        if args.format == "json"
        else registry.to_prometheus()
    )
    if args.out is None:
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        try:
            with open(args.out, "w", encoding="utf-8") as stream:
                stream.write(text)
        except OSError as error:
            raise CliError(f"cannot write {args.out}: {error}")
        print(f"wrote {args.out} ({args.format})")
    return 0


def _obs_trace(args) -> int:
    from .obs.trace import Span, render_tree
    from .workloads.query_bench import run_trace_probe

    try:
        trace, breakdown = run_trace_probe(
            quick=not args.full,
            workers=args.workers,
            queries=args.queries,
            repeats=args.repeats,
            transport=args.transport,
            dispatch_window=args.window,
        )
    except ValueError as error:
        raise CliError(str(error))
    if args.json:
        print(json.dumps({"trace": trace, "breakdown": breakdown}, indent=2))
        return 0
    print(
        render_tree(
            Span.from_dict(trace), min_wall=args.min_wall_ms / 1000.0
        )
    )
    total = breakdown["total_seconds"]
    print()
    print(
        f"request wall {total * 1000:.2f}ms over "
        f"{breakdown['worker_calls']} worker call(s):"
    )
    for key, label in (
        ("plan_seconds", "plan"),
        ("worker_seconds", "worker decode"),
        ("ipc_seconds", "IPC overhead"),
        ("merge_seconds", "merge"),
    ):
        share = breakdown[key] / total if total > 0 else 0.0
        print(
            f"  {label:<14} {breakdown[key] * 1000:8.2f}ms "
            f"({share * 100:5.1f}% of request wall)"
        )
    print(
        f"  ipc_share = {breakdown['ipc_share']:.3f} "
        f"(the sharded-path tax ROADMAP item 1 tracks)"
    )
    return 0


def cmd_bench(args) -> int:
    from .workloads.hotpath_bench import run_hotpath_bench, write_bench_json
    from .workloads.reporting import render_table

    results = run_hotpath_bench(quick=args.quick)
    rows = write_bench_json(
        results, args.output, label=args.label, append=args.append
    )
    print(
        render_table(
            f"hot-path benchmarks ({'quick' if args.quick else 'full'} "
            f"workloads, label={args.label})",
            ["label", "benchmark", "unit", "work", "seconds", "rate"],
            rows,
        )
    )
    print(f"wrote {args.output} ({len(rows)} rows)")
    return 0


def cmd_stream(args) -> int:
    from .stream.writer import StreamArchiveError

    handlers = {
        "replay": _stream_replay,
        "compact": _stream_compact,
        "gc": _stream_gc,
        "stats": _stream_stats,
    }
    try:
        return handlers[args.action](args)
    except (StreamArchiveError, ArchiveFormatError, ValueError) as error:
        # ValueError: config validation (e.g. --segment-size 0)
        raise CliError(f"{error}")


def _stream_replay(args) -> int:
    from .mapmatching.noise import synthesize_raw_dataset
    from .network.generators import dataset_network
    from .stream import (
        AppendableArchiveWriter,
        SessionConfig,
        TripSessionizer,
        replay,
    )
    from .trajectories.datasets import profile as dataset_profile

    prof = dataset_profile(args.profile)
    scale = (
        args.network_scale
        if args.network_scale is not None
        else prof.network_scale
    )
    network = dataset_network(prof.name, scale=scale, seed=args.dataset_seed)
    feeds = synthesize_raw_dataset(
        network,
        prof.generation_config(),
        args.count,
        seed=args.dataset_seed,
        noise_sigma=args.noise_sigma,
    )
    with AppendableArchiveWriter(
        args.directory,
        network,
        default_interval=prof.default_interval,
        segment_max_trajectories=args.segment_size,
        provenance={
            "generator": "repro.stream.replay",
            "profile": prof.name,
            "dataset_seed": str(args.dataset_seed),
            "network_scale": str(scale),
        },
    ) as writer:
        # resume id numbering when replaying into an existing archive
        sessionizer = TripSessionizer(
            network,
            config=SessionConfig(
                gap_timeout=args.gap_timeout, max_duration=args.max_duration
            ),
            start_id=writer.next_trajectory_id,
        )
        report = replay(
            sessionizer, feeds, writer=writer, speed=args.speed
        )
        segment_count = writer.segment_count
    if not args.quiet:
        print(
            f"replayed {report.points} points from {args.count} vehicles "
            f"({report.feed_seconds}s of feed time) in "
            f"{report.elapsed_seconds:.2f}s — "
            f"{report.points_per_second:,.0f} points/sec sustained"
        )
        print(
            f"sealed {report.trips_sealed} trips "
            f"({report.trips_discarded} discarded) into "
            f"{segment_count} segments under {args.directory}"
        )
    return 0


def _stream_compact(args) -> int:
    import os

    from .stream import compact
    from .stream.writer import SEGMENT_DIR, load_manifest, manifest_segments

    if args.output is None:
        return _stream_compact_in_place(args)
    baseline = _telemetry_begin(args)
    manifest = load_manifest(args.directory)
    network = _network_from_manifest_provenance(manifest)
    size, count = compact(args.directory, args.output, network=network)
    segment_bytes = 0
    for info in manifest_segments(manifest):
        segment_bytes += os.path.getsize(
            os.path.join(args.directory, SEGMENT_DIR, info.name)
        )
    print(
        f"compacted {count} trajectories from "
        f"{len(manifest['segments'])} segments ({segment_bytes} bytes) "
        f"into {args.output} ({size} bytes)"
    )
    if network is not None:
        print(
            f"wrote {args.output}.stiu: StIU index sidecar "
            f"(warm query opens)"
        )
    else:
        print(
            "note: no dataset provenance in the manifest; skipped the "
            "index sidecar (queries will rebuild the index on open)"
        )
    _telemetry_end(args, baseline)
    return 0


def _stream_compact_in_place(args) -> int:
    import time as _time

    from .stream import CompactionDaemon, load_manifest, make_policy

    baseline = _telemetry_begin(args)
    manifest = load_manifest(args.directory)
    network = _network_from_manifest_provenance(manifest)
    policy_name = args.policy or "size-tiered"
    if policy_name == "size-tiered":
        policy = make_policy(
            policy_name, min_merge=args.min_merge, max_merge=args.max_merge
        )
    else:
        policy = make_policy(policy_name, fanout=args.fanout)
    daemon = CompactionDaemon(
        args.directory,
        policy=policy,
        network=network,
        interval=args.interval,
    )
    before = len(manifest["segments"])
    if args.daemon:
        daemon.start()
        try:
            _time.sleep(args.duration)
        finally:
            stats = daemon.stop()
    else:
        daemon.run_once()
        stats = daemon.stats
    after = len(load_manifest(args.directory)["segments"])
    print(
        f"{policy.describe()}: {stats.merges} merge(s), "
        f"{stats.segments_merged} segments in, {before} -> {after} "
        f"segments, {stats.bytes_read} bytes read / "
        f"{stats.bytes_written} written "
        f"(generation {daemon.store.state.generation})"
    )
    if network is None:
        print(
            "note: no dataset provenance in the manifest; merged segments "
            "got no index sidecars (live queries will rebuild for them)"
        )
    _telemetry_end(args, baseline)
    return 0


def _stream_gc(args) -> int:
    from .stream import ManifestStore, gc_segments

    store = ManifestStore.open(args.directory)
    dropped = gc_segments(
        store,
        drop_before=args.drop_before,
        ttl_seconds=args.ttl,
        dry_run=args.dry_run,
    )
    verb = "would drop" if args.dry_run else "dropped"
    print(
        f"{verb} {len(dropped)} segment(s), "
        f"{sum(s.trajectory_count for s in dropped)} trajectories, "
        f"{sum(s.file_bytes for s in dropped)} bytes"
    )
    for info in dropped:
        print(
            f"  {info.name}: times {info.min_time}..{info.max_time}, "
            f"ids {info.min_trajectory_id}..{info.max_trajectory_id}"
        )
    return 0


def _network_from_manifest_provenance(manifest: dict):
    """Best effort: rebuild the stream archive's network for the sidecar."""
    from .query.engine import QueryEngineError, build_network_from_provenance

    try:
        return build_network_from_provenance(manifest.get("provenance") or {})
    except QueryEngineError:
        return None


def _stream_stats(args) -> int:
    from .stream.writer import load_manifest, manifest_segments

    manifest = load_manifest(args.directory)
    segments = manifest_segments(manifest)
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print(
        f"{args.directory}: stream archive, manifest "
        f"v{manifest['version']} generation {manifest.get('generation', 0)}"
    )
    print(
        f"  trajectories {manifest['trajectory_count']}, "
        f"instances {manifest['instance_count']}, "
        f"segments {len(segments)}"
    )
    if segments:
        print(
            f"  time span: {min(s.min_time for s in segments)} .. "
            f"{max(s.max_time for s in segments)}"
        )
        print(
            f"  on disk: {sum(s.file_bytes for s in segments)} bytes "
            f"of sealed segments"
        )
        for info in segments:
            print(
                f"    {info.name} (L{info.level}): "
                f"{info.trajectory_count} trajectories, "
                f"ids {info.min_trajectory_id}..{info.max_trajectory_id}, "
                f"{info.file_bytes} bytes"
            )
    if manifest.get("provenance"):
        pairs = ", ".join(
            f"{key}={value}"
            for key, value in sorted(manifest["provenance"].items())
        )
        print(f"  provenance: {pairs}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compress": cmd_compress,
        "info": cmd_info,
        "decompress": cmd_decompress,
        "query": cmd_query,
        "stream": cmd_stream,
        "bench": cmd_bench,
        "serve-bench": cmd_serve_bench,
        "serve": cmd_serve,
        "obs": cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except ConfigError as error:
        # a malformed REPRO_* variable: one operator-facing line
        # instead of an uncaught ValueError traceback
        raise CliError(str(error))
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) closed early; exit quietly
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
