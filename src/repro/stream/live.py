"""Query view over a growing stream archive.

:class:`LiveArchive` unions the sealed segments of an
:class:`~repro.stream.writer.AppendableArchiveWriter` directory behind
the read surface the query stack already consumes (``params``,
``stats``, ``trajectories`` iteration, ``trajectory(id)``) — the same
duck type as :class:`~repro.core.archive.CompressedArchive` and
:class:`~repro.io.reader.FileBackedArchive`.  A
:class:`~repro.query.stiu.StIUIndex` and
:class:`~repro.query.queries.UTCQQueryProcessor` built over it answer
where/when/range queries while the writer keeps appending.

Consistency model: a ``LiveArchive`` is a snapshot of the segments
sealed at :meth:`refresh` time.  Sealed segments are immutable, so the
snapshot never changes underneath an index built on it; call
:meth:`refresh` (and rebuild the index) to pick up newly sealed
segments.  The unsealed buffer inside the writer is never visible.
"""

from __future__ import annotations

from pathlib import Path

from ..core.archive import (
    CompressedTrajectory,
    CompressionParams,
    CompressionStats,
)
from ..core.decoder import DecodeSpanCache
from ..io.reader import DEFAULT_CACHE_SIZE, ArchiveClosedError, FileBackedArchive
from .writer import SEGMENT_DIR, StreamArchiveError, load_manifest, manifest_segments


class _LiveTrajectorySequence:
    """Read-only iteration over a live archive's union of segments."""

    def __init__(self, archive: "LiveArchive") -> None:
        self._archive = archive

    def __len__(self) -> int:
        return self._archive.trajectory_count

    def __iter__(self):
        for trajectory_id in self._archive.trajectory_ids():
            yield self._archive.trajectory(trajectory_id)


class LiveArchive:
    """Union of the sealed segments of a stream-archive directory."""

    def __init__(
        self,
        directory,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        verify_crc: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.cache_size = cache_size
        self.verify_crc = verify_crc
        self._segments: list[FileBackedArchive] = []
        self._segment_names: set[str] = set()
        self._id_to_segment: dict[int, FileBackedArchive] = {}
        self._params: CompressionParams | None = None
        self._provenance: dict[str, str] = {}
        self._closed = False
        # Decoded spans survive refresh(): sealed segments are immutable,
        # so trajectories decoded before a refresh stay valid after it.
        # Query processors built over this archive should pass this cache
        # (see query_processor()) so mid-ingestion queries keep their
        # warm spans across index rebuilds.
        self.decode_cache = DecodeSpanCache()
        self.refresh()

    @classmethod
    def open(cls, directory, **kwargs) -> "LiveArchive":
        """Alias of the constructor, mirroring ``FileBackedArchive.open``."""
        return cls(directory, **kwargs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ArchiveClosedError(
                f"live archive over {self.directory} is closed"
            )

    def close(self) -> None:
        self._check_open()
        self._closed = True
        for segment in self._segments:
            if not segment.closed:
                segment.close()

    def __enter__(self) -> "LiveArchive":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()

    # ------------------------------------------------------------------
    # snapshot maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Open any newly sealed segments; returns how many were added."""
        self._check_open()
        manifest = load_manifest(self.directory)
        params = manifest["params"]
        self._provenance = dict(manifest.get("provenance", {}))
        added = 0
        for info in manifest_segments(manifest):
            if info.name in self._segment_names:
                continue
            segment = FileBackedArchive.open(
                self.directory / SEGMENT_DIR / info.name,
                cache_size=self.cache_size,
                verify_crc=self.verify_crc,
            )
            if self._params is None:
                self._params = segment.params
            elif segment.params != self._params:
                segment.close()
                raise StreamArchiveError(
                    f"segment {info.name} params differ from the archive's"
                )
            self._segments.append(segment)
            self._segment_names.add(info.name)
            for trajectory_id in segment.trajectory_ids():
                self._id_to_segment[trajectory_id] = segment
            added += 1
        if self._params is None and params:
            from .writer import _params_from_dict

            self._params = _params_from_dict(params)
        return added

    # ------------------------------------------------------------------
    # CompressedArchive-compatible surface
    # ------------------------------------------------------------------
    @property
    def params(self) -> CompressionParams:
        if self._params is None:
            raise StreamArchiveError(
                f"stream archive {self.directory} has no sealed segments yet"
            )
        return self._params

    @property
    def stats(self) -> CompressionStats:
        total = CompressionStats()
        for segment in self._segments:
            total.add(segment.stats)
        return total

    @property
    def provenance(self) -> dict[str, str]:
        return dict(self._provenance)

    @property
    def trajectory_count(self) -> int:
        return sum(s.trajectory_count for s in self._segments)

    @property
    def instance_count(self) -> int:
        return sum(s.instance_count for s in self._segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def trajectories(self) -> _LiveTrajectorySequence:
        return _LiveTrajectorySequence(self)

    def trajectory_ids(self) -> list[int]:
        self._check_open()
        return sorted(self._id_to_segment)

    def trajectory(self, trajectory_id: int) -> CompressedTrajectory:
        self._check_open()
        segment = self._id_to_segment.get(trajectory_id)
        if segment is None:
            raise KeyError(f"no trajectory {trajectory_id} in the archive")
        return segment.trajectory(trajectory_id)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query_processor(
        self,
        network,
        *,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
    ):
        """Build a fresh StIU index over the current snapshot and return
        a query processor sharing this archive's decode-span cache.

        Call again after :meth:`refresh` to serve newly sealed segments;
        spans decoded through the previous processor stay warm because
        the cache outlives the index rebuild.
        """
        from ..query.queries import UTCQQueryProcessor
        from ..query.stiu import StIUIndex

        self._check_open()
        index = StIUIndex(
            network,
            self,
            grid_cells_per_side=grid_cells_per_side,
            time_partition_seconds=time_partition_seconds,
        )
        return UTCQQueryProcessor(
            network, self, index, cache=self.decode_cache
        )
