"""Query view over a growing (and background-compacting) stream archive.

:class:`LiveArchive` unions the sealed segments of an
:class:`~repro.stream.writer.AppendableArchiveWriter` directory behind
the read surface the query stack already consumes (``params``,
``stats``, ``trajectories`` iteration, ``trajectory(id)``) — the same
duck type as :class:`~repro.core.archive.CompressedArchive` and
:class:`~repro.io.reader.FileBackedArchive`.  A
:class:`~repro.query.stiu.StIUIndex` and
:class:`~repro.query.queries.UTCQQueryProcessor` built over it answer
where/when/range queries while the writer keeps appending and the
compaction daemon keeps merging.

Consistency model: a ``LiveArchive`` is a snapshot of the manifest
generation read at :meth:`refresh` time.  Segment files are immutable,
so the snapshot never changes underneath an index built on it; call
:meth:`refresh` to pick up newly sealed segments *and* compaction
results (merged segments replace their sources in the id map, while
the replaced readers are retired — kept open until :meth:`close` so
queries in flight on an older snapshot still complete).  The unsealed
buffer inside the writer is never visible.

Indexing: segments carry ``.stiu`` sidecars written at rotation and
merge time, so :meth:`build_index` *loads* per-segment indexes and
merges them instead of decoding every record — an open of a sidecar-ed
archive never triggers a StIU rebuild (``sidecar_misses`` counts the
exceptions, e.g. segments sealed with ``write_sidecars=False``).
Per-segment indexes are cached by segment name, so a refresh only
pays for segments it has not seen.
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..core.archive import (
    CompressedTrajectory,
    CompressionParams,
    CompressionStats,
)
from ..core.decoder import DecodeSpanCache
from ..io.reader import DEFAULT_CACHE_SIZE, ArchiveClosedError, FileBackedArchive
from ..obs import metrics as obs_metrics
from .manifest import (
    SEGMENT_DIR,
    SIDECAR_SUFFIX,
    StreamArchiveError,
    load_manifest,
    manifest_segments,
    params_from_dict,
)


class _LiveTrajectorySequence:
    """Read-only iteration over a live archive's union of segments."""

    def __init__(self, archive: "LiveArchive") -> None:
        self._archive = archive

    def __len__(self) -> int:
        return self._archive.trajectory_count

    def __iter__(self):
        for trajectory_id in self._archive.trajectory_ids():
            yield self._archive.trajectory(trajectory_id)


class LiveArchive:
    """Union of the sealed segments of a stream-archive directory."""

    def __init__(
        self,
        directory,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        verify_crc: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.cache_size = cache_size
        self.verify_crc = verify_crc
        self._archives: dict[str, FileBackedArchive] = {}
        self._levels: dict[str, int] = {}
        self._retired: list[FileBackedArchive] = []
        self._id_to_segment: dict[int, FileBackedArchive] = {}
        self._params: CompressionParams | None = None
        self._provenance: dict[str, str] = {}
        self._closed = False
        self.generation = 0
        self._refresh_lock = threading.Lock()
        # per-segment StIU indexes, cached by segment name (immutable
        # files -> immutable indexes); cleared entry-wise as compaction
        # retires segments.  _index_key pins the grid parameters the
        # cache was built with.
        self._segment_indexes: dict[str, object] = {}
        self._index_key: tuple[int, int] | None = None
        #: how many segment indexes came from .stiu sidecars vs. were
        #: rebuilt by decoding records (cumulative over this instance);
        #: ``sidecar_stale`` counts segments whose files were compacted
        #: away under this snapshot and had to be indexed from the
        #: still-open reader
        self.sidecar_hits = 0
        self.sidecar_misses = 0
        self.sidecar_stale = 0
        # per-instance ints above stay the tested per-archive view; the
        # process registry gets the same events for scrape export
        self._sidecar_metrics = {
            outcome: obs_metrics.counter(
                "repro_stream_sidecar_loads_total",
                labels={"outcome": outcome},
                help="Segment index loads by outcome (hit/miss/stale)",
            )
            for outcome in ("hit", "miss", "stale")
        }
        # Decoded spans survive refresh(): sealed segments are immutable,
        # so trajectories decoded before a refresh stay valid after it.
        # Query processors built over this archive should pass this cache
        # (see query_processor()) so mid-ingestion queries keep their
        # warm spans across index rebuilds.
        self.decode_cache = DecodeSpanCache()
        self.refresh()

    @classmethod
    def open(cls, directory, **kwargs) -> "LiveArchive":
        """Alias of the constructor, mirroring ``FileBackedArchive.open``."""
        return cls(directory, **kwargs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ArchiveClosedError(
                f"live archive over {self.directory} is closed"
            )

    def close(self) -> None:
        self._check_open()
        self._closed = True
        for segment in list(self._archives.values()) + self._retired:
            if not segment.closed:
                segment.close()

    def __enter__(self) -> "LiveArchive":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()

    # ------------------------------------------------------------------
    # snapshot maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Adopt the manifest's current segment set; returns how many
        segments were newly opened.

        Newly sealed segments are opened; segments compaction removed
        are retired (their readers stay open for queries already in
        flight and are closed with the archive).  The id map is rebuilt
        atomically, so concurrent :meth:`trajectory` calls see either
        the old snapshot or the new one, never a mix.
        """
        self._check_open()
        with self._refresh_lock:
            manifest = load_manifest(self.directory)
            self._provenance = dict(manifest.get("provenance", {}))
            self.generation = manifest.get("generation", 0)
            infos = manifest_segments(manifest)
            current = {info.name for info in infos}
            added = 0
            for info in infos:
                if info.name in self._archives:
                    self._levels[info.name] = info.level
                    continue
                segment = FileBackedArchive.open(
                    self.directory / SEGMENT_DIR / info.name,
                    cache_size=self.cache_size,
                    verify_crc=self.verify_crc,
                )
                if self._params is None:
                    self._params = segment.params
                elif segment.params != self._params:
                    segment.close()
                    raise StreamArchiveError(
                        f"segment {info.name} params differ from the "
                        f"archive's"
                    )
                self._archives[info.name] = segment
                self._levels[info.name] = info.level
                added += 1
            for name in sorted(set(self._archives) - current):
                self._retired.append(self._archives.pop(name))
                self._levels.pop(name, None)
                self._segment_indexes.pop(name, None)
            id_map: dict[int, FileBackedArchive] = {}
            for segment in self._archives.values():
                for trajectory_id in segment.trajectory_ids():
                    id_map[trajectory_id] = segment
            self._id_to_segment = id_map
            if self._params is None and manifest["params"]:
                self._params = params_from_dict(manifest["params"])
            return added

    # ------------------------------------------------------------------
    # CompressedArchive-compatible surface
    # ------------------------------------------------------------------
    @property
    def params(self) -> CompressionParams:
        if self._params is None:
            raise StreamArchiveError(
                f"stream archive {self.directory} has no sealed segments yet"
            )
        return self._params

    @property
    def stats(self) -> CompressionStats:
        total = CompressionStats()
        for segment in self._archives.values():
            total.add(segment.stats)
        return total

    @property
    def provenance(self) -> dict[str, str]:
        return dict(self._provenance)

    @property
    def trajectory_count(self) -> int:
        return len(self._id_to_segment)

    @property
    def instance_count(self) -> int:
        return sum(s.instance_count for s in self._archives.values())

    @property
    def segment_count(self) -> int:
        return len(self._archives)

    @property
    def retired_count(self) -> int:
        """Readers kept open for old snapshots after compaction."""
        return len(self._retired)

    def segment_levels(self) -> dict[str, int]:
        """Current segment names mapped to their compaction level."""
        return dict(self._levels)

    @property
    def trajectories(self) -> _LiveTrajectorySequence:
        return _LiveTrajectorySequence(self)

    def trajectory_ids(self) -> list[int]:
        self._check_open()
        return sorted(self._id_to_segment)

    def trajectory(self, trajectory_id: int) -> CompressedTrajectory:
        self._check_open()
        segment = self._id_to_segment.get(trajectory_id)
        if segment is None:
            raise KeyError(f"no trajectory {trajectory_id} in the archive")
        return segment.trajectory(trajectory_id)

    # ------------------------------------------------------------------
    # indexing / querying
    # ------------------------------------------------------------------
    def build_index(
        self,
        network,
        *,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
    ):
        """A StIU index over the current snapshot, sidecar-first.

        Each segment contributes its persisted ``.stiu`` index when one
        exists (written at rotation/merge time); only segments without
        a usable sidecar are decoded and rebuilt.  Per-segment indexes
        are cached by name, so successive calls after a refresh pay
        only for unseen segments.  The merged index is a fresh object
        each call (cheap — dict unions over the cached parts).
        """
        from ..query.sidecar import load_or_build_index
        from ..query.stiu import StIUIndex

        self._check_open()
        with self._refresh_lock:
            key = (grid_cells_per_side, time_partition_seconds)
            if self._index_key != key:
                self._segment_indexes.clear()
                self._index_key = key
            parts = []
            for name, segment in sorted(self._archives.items()):
                part = self._segment_indexes.get(name)
                if part is None:
                    path = self.directory / SEGMENT_DIR / name
                    try:
                        part, from_sidecar = load_or_build_index(
                            network,
                            segment,
                            path,
                            sidecar_path=Path(str(path) + SIDECAR_SUFFIX),
                            grid_cells_per_side=grid_cells_per_side,
                            time_partition_seconds=time_partition_seconds,
                        )
                        if from_sidecar:
                            self.sidecar_hits += 1
                            self._sidecar_metrics["hit"].inc()
                        else:
                            self.sidecar_misses += 1
                            self._sidecar_metrics["miss"].inc()
                    except OSError:
                        # a concurrent merge unlinked this segment after
                        # the snapshot was taken; its reader is still
                        # open, so index the records through it
                        part = StIUIndex(
                            network,
                            segment,
                            grid_cells_per_side=grid_cells_per_side,
                            time_partition_seconds=time_partition_seconds,
                        )
                        self.sidecar_stale += 1
                        self._sidecar_metrics["stale"].inc()
                    self._segment_indexes[name] = part
                parts.append(part)
            return StIUIndex.merged(
                network,
                self,
                parts,
                grid_cells_per_side=grid_cells_per_side,
                time_partition_seconds=time_partition_seconds,
            )

    def query_processor(
        self,
        network,
        *,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
    ):
        """Build (or assemble from sidecars) a StIU index over the
        current snapshot and return a query processor sharing this
        archive's decode-span cache.

        Call again after :meth:`refresh` to serve newly sealed or
        freshly merged segments; spans decoded through the previous
        processor stay warm because the cache outlives the index.
        """
        from ..query.queries import UTCQQueryProcessor

        index = self.build_index(
            network,
            grid_cells_per_side=grid_cells_per_side,
            time_partition_seconds=time_partition_seconds,
        )
        return UTCQQueryProcessor(
            network, self, index, cache=self.decode_cache
        )
