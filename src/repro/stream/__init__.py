"""Streaming ingestion: online map matching, sessionization, appendable
archives with an LSM-style segment lifecycle, and live querying.

The batch pipeline (``match -> compress -> save``) assumes the dataset
exists in full before work starts.  This package turns it into a live
path::

    (vehicle, fix) events
         │  StreamingMapMatcher      incremental list-Viterbi, fixed-lag
         ▼                           estimates per vehicle
    TripSessionizer                  gap / duration / match cuts
         │                           -> sealed UncertainTrajectory trips
         ▼
    AppendableArchiveWriter          rotating .utcq segments + .stiu
         │                           sidecars + generational manifest
         ├── CompactionDaemon        background size-tiered / leveled
         │                           merges while ingestion continues
         ├── gc_segments             retention: drop whole cold segments
         ├── LiveArchive             query the sealed union mid-ingestion
         │                           (indexes assembled from sidecars)
         └── compact()               one canonical batch-format archive

The manifest is crash-safe (atomic rename, fsync, generation numbers)
and :func:`recover` reconciles a directory after a kill — adopting the
orphan segment a crash between rotation and manifest commit leaves
behind, and sweeping everything else.  The CLI front end is
``repro stream replay | compact | gc | stats``.
"""

from .compaction import (
    CompactionDaemon,
    CompactionPolicy,
    CompactionStats,
    CompactionTask,
    LeveledPolicy,
    SizeTieredPolicy,
    drain_compactions,
    gc_segments,
    make_policy,
    merge_segments,
)
from .ingest import ObserveStatus, StreamCounters, StreamingMapMatcher
from .live import LiveArchive
from .manifest import (
    Filesystem,
    ManifestStore,
    RecoveryReport,
    recover,
)
from .replay import ReplayReport, feed_events, replay
from .session import SessionConfig, SessionCounters, TripSessionizer
from .writer import (
    AppendableArchiveWriter,
    SegmentInfo,
    StreamArchiveError,
    compact,
    load_manifest,
    manifest_segments,
)

__all__ = [
    "ObserveStatus",
    "StreamCounters",
    "StreamingMapMatcher",
    "LiveArchive",
    "ReplayReport",
    "feed_events",
    "replay",
    "SessionConfig",
    "SessionCounters",
    "TripSessionizer",
    "AppendableArchiveWriter",
    "SegmentInfo",
    "StreamArchiveError",
    "compact",
    "load_manifest",
    "manifest_segments",
    "CompactionDaemon",
    "CompactionPolicy",
    "CompactionStats",
    "CompactionTask",
    "LeveledPolicy",
    "SizeTieredPolicy",
    "drain_compactions",
    "gc_segments",
    "make_policy",
    "merge_segments",
    "Filesystem",
    "ManifestStore",
    "RecoveryReport",
    "recover",
]
