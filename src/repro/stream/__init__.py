"""Streaming ingestion: online map matching, sessionization, appendable
archives, and live querying.

The batch pipeline (``match -> compress -> save``) assumes the dataset
exists in full before work starts.  This package turns it into a live
path::

    (vehicle, fix) events
         │  StreamingMapMatcher      incremental list-Viterbi, fixed-lag
         ▼                           estimates per vehicle
    TripSessionizer                  gap / duration / match cuts
         │                           -> sealed UncertainTrajectory trips
         ▼
    AppendableArchiveWriter          rotating .utcq segments + manifest
         │
         ├── LiveArchive             query the sealed union mid-ingestion
         └── compact()               one canonical batch-format archive

The CLI front end is ``repro stream replay | compact | stats``.
"""

from .ingest import ObserveStatus, StreamCounters, StreamingMapMatcher
from .live import LiveArchive
from .replay import ReplayReport, feed_events, replay
from .session import SessionConfig, SessionCounters, TripSessionizer
from .writer import (
    AppendableArchiveWriter,
    SegmentInfo,
    StreamArchiveError,
    compact,
    load_manifest,
    manifest_segments,
)

__all__ = [
    "ObserveStatus",
    "StreamCounters",
    "StreamingMapMatcher",
    "LiveArchive",
    "ReplayReport",
    "feed_events",
    "replay",
    "SessionConfig",
    "SessionCounters",
    "TripSessionizer",
    "AppendableArchiveWriter",
    "SegmentInfo",
    "StreamArchiveError",
    "compact",
    "load_manifest",
    "manifest_segments",
]
