"""Per-vehicle trip sessionization of a live matched point stream.

A fleet feed is a single interleaved sequence of ``(vehicle_id, fix)``
events.  :class:`TripSessionizer` keeps one
:class:`~repro.stream.ingest.StreamingMapMatcher` per active vehicle
(all sharing one spatial index) and cuts the per-vehicle streams into
*trips* — the :class:`~repro.trajectories.model.UncertainTrajectory`
units the compressor and archive operate on:

* **gap cut** — a silence longer than ``gap_timeout`` seconds ends the
  trip (the vehicle parked, or its uplink died);
* **duration cut** — a trip reaching ``max_duration`` seconds is sealed
  so no single trip grows without bound (beam partials grow linearly
  with trip length);
* **match cut** — a fix the beam cannot absorb seals the trip-so-far
  and starts a new trip at that fix (a batch matcher would discard the
  whole trajectory; online we salvage the matched prefix).

Gap cuts alone only fire when the *same* vehicle sends another fix, so
a vehicle that goes offline mid-trip would otherwise pin its beam in
memory forever.  The sessionizer therefore also **evicts idle
vehicles**: every ``evict_interval`` fixes (using the maximum observed
timestamp as the clock) any vehicle silent beyond ``gap_timeout`` has
its trip sealed and its per-vehicle state dropped, keeping memory
bounded by the number of *currently active* vehicles, not every id
ever seen.  :meth:`TripSessionizer.evict_idle` runs the same sweep on
demand.

Sealed trips shorter than ``min_points`` fixes are discarded.  Each
sealed trip receives the next id from a monotonic counter, so ids are
unique across the whole ingestion run — the appendable archive relies
on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..mapmatching.hmm import MatcherConfig, ProbabilisticMapMatcher
from ..network.graph import RoadNetwork
from ..trajectories.model import RawPoint, UncertainTrajectory
from .ingest import ObserveStatus, StreamingMapMatcher


@dataclass(frozen=True)
class SessionConfig:
    """Trip-cutting policy."""

    gap_timeout: float = 300.0  # seconds of silence that end a trip
    max_duration: float = 4 * 3600.0  # hard cap on one trip's time span
    min_points: int = 2  # sealed trips with fewer fixes are discarded

    def __post_init__(self) -> None:
        if self.gap_timeout <= 0:
            raise ValueError("gap_timeout must be positive")
        if self.max_duration <= 0:
            raise ValueError("max_duration must be positive")
        if self.min_points < 1:
            raise ValueError("min_points must be at least 1")


@dataclass
class SessionCounters:
    """Ingestion accounting across all vehicles."""

    points: int = 0
    stale_points: int = 0
    trips_sealed: int = 0
    trips_discarded: int = 0
    cuts: dict[str, int] = field(
        default_factory=lambda: {
            "gap": 0, "duration": 0, "unmatchable": 0, "flush": 0,
        }
    )


class TripSessionizer:
    """Converts an interleaved fleet feed into sealed uncertain trips.

    ``on_seal`` (if given) is called with every sealed trip in addition
    to the trip being returned from :meth:`observe` / :meth:`flush` —
    convenient for wiring the sessionizer straight into an
    :class:`~repro.stream.writer.AppendableArchiveWriter`.
    """

    def __init__(
        self,
        network: RoadNetwork,
        matcher_config: MatcherConfig | None = None,
        config: SessionConfig | None = None,
        *,
        start_id: int = 0,
        fixed_lag: int = 8,
        evict_interval: int = 1024,
        on_seal: Callable[[UncertainTrajectory], None] | None = None,
    ) -> None:
        if evict_interval < 1:
            raise ValueError("evict_interval must be at least 1")
        self.matcher = ProbabilisticMapMatcher(network, matcher_config)
        self.config = config or SessionConfig()
        self.fixed_lag = fixed_lag
        self.evict_interval = evict_interval
        self.on_seal = on_seal
        self.counters = SessionCounters()
        self._active: dict[Hashable, StreamingMapMatcher] = {}
        self._next_id = start_id
        self._clock: int | None = None
        self._since_evict = 0

    # ------------------------------------------------------------------
    @property
    def active_vehicle_count(self) -> int:
        return sum(1 for s in self._active.values() if s.point_count)

    @property
    def next_trajectory_id(self) -> int:
        return self._next_id

    def estimate(self, vehicle_id: Hashable):
        """Fixed-lag position estimate of one vehicle (or ``None``)."""
        state = self._active.get(vehicle_id)
        if state is None:
            return None
        return state.fixed_lag_estimate()

    # ------------------------------------------------------------------
    def observe(
        self, vehicle_id: Hashable, point: RawPoint
    ) -> list[UncertainTrajectory]:
        """Feed one fix; returns the trips this fix caused to be sealed
        (usually none; more when an idle-vehicle sweep piggybacks)."""
        self.counters.points += 1
        sealed: list[UncertainTrajectory] = []
        state = self._active.get(vehicle_id)
        if state is None:
            state = StreamingMapMatcher(
                matcher=self.matcher, fixed_lag=self.fixed_lag
            )
            self._active[vehicle_id] = state

        if state.point_count:
            if point.t - state.last_time > self.config.gap_timeout:
                self._seal(state, "gap", sealed)
            elif point.t - state.start_time >= self.config.max_duration:
                self._seal(state, "duration", sealed)

        status = state.observe(point)
        if status is ObserveStatus.STALE:
            self.counters.stale_points += 1
        elif status is ObserveStatus.UNMATCHABLE and state.point_count:
            # salvage the matched prefix, restart the trip at this fix
            self._seal(state, "unmatchable", sealed)
            state.observe(point)

        if self._clock is None or point.t > self._clock:
            self._clock = point.t
        self._since_evict += 1
        if self._since_evict >= self.evict_interval:
            sealed.extend(self.evict_idle())
        return sealed

    def evict_idle(self, now: int | None = None) -> list[UncertainTrajectory]:
        """Seal and drop every vehicle silent beyond ``gap_timeout``.

        ``now`` defaults to the maximum timestamp observed so far.  A
        future fix from an evicted vehicle simply starts a new trip —
        identical to what the gap cut would have produced, just without
        waiting for that fix to arrive.
        """
        self._since_evict = 0
        if now is None:
            now = self._clock
        if now is None:
            return []
        sealed: list[UncertainTrajectory] = []
        idle = [
            vehicle_id
            for vehicle_id, state in self._active.items()
            if not state.point_count
            or now - state.last_time > self.config.gap_timeout
        ]
        for vehicle_id in idle:
            state = self._active.pop(vehicle_id)
            if state.point_count:
                self._seal(state, "gap", sealed)
        return sealed

    def flush(
        self, vehicle_id: Hashable | None = None
    ) -> list[UncertainTrajectory]:
        """Seal every active trip (or one vehicle's) — end of feed."""
        sealed: list[UncertainTrajectory] = []
        if vehicle_id is not None:
            targets = [vehicle_id] if vehicle_id in self._active else []
        else:
            targets = list(self._active)
        for target in targets:
            state = self._active.pop(target)
            if state.point_count:
                self._seal(state, "flush", sealed)
        return sealed

    # ------------------------------------------------------------------
    def _seal(
        self,
        state: StreamingMapMatcher,
        reason: str,
        sealed: list[UncertainTrajectory],
    ) -> None:
        point_count = state.point_count
        trajectory = state.finish()
        self.counters.cuts[reason] += 1
        if trajectory is None or point_count < self.config.min_points:
            self.counters.trips_discarded += 1
            return
        trajectory.trajectory_id = self._next_id
        self._next_id += 1
        self.counters.trips_sealed += 1
        sealed.append(trajectory)
        if self.on_seal is not None:
            self.on_seal(trajectory)
