"""Appendable archives: rotating ``.utcq`` segments plus a JSON manifest.

The batch ``.utcq`` format is write-once (header counts, directory and
dataset-wide stats are all computed up front), which is exactly wrong
for ingestion.  :class:`AppendableArchiveWriter` keeps the format
untouched and gains appendability one level up, the way log-structured
stores do:

* sealed trips are compressed immediately (deterministically, via the
  per-trajectory RNG) and buffered;
* every ``segment_max_trajectories`` trips the buffer is written as an
  ordinary, self-contained ``.utcq`` **segment** under ``segments/``;
* ``manifest.json`` is rewritten atomically (tmp + ``os.replace``)
  after each seal, recording the segment list, shared compression
  params, aggregate stats, and provenance.

Every segment is a valid archive readable by the standard
:class:`~repro.io.reader.FileBackedArchive`, so a
:class:`~repro.stream.live.LiveArchive` can union the sealed segments
for querying *while ingestion continues*.  :func:`compact` later merges
all segments into one canonical archive byte-compatible with
:mod:`repro.io.format` — indistinguishable from a batch-written file.

Because ingestion cannot know the dataset-wide maximum start time the
batch pipeline derives ``t0_bits`` from, the writer fixes ``t0_bits``
(default 32) up front; the parameter travels in the header, so readers,
indexes and queries are unaffected.

A writer re-opened on an existing directory resumes appending: the
manifest is the recovery point (an interrupted run loses at most the
unsealed buffer, never a sealed segment).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..bits.bitio import uint_width
from ..core.archive import (
    CompressedArchive,
    CompressedTrajectory,
    ComponentBits,
    CompressionParams,
    CompressionStats,
)
from ..core.compressor import (
    DEFAULT_ETA_DISTANCE,
    DEFAULT_ETA_PROBABILITY,
    UTCQCompressor,
)
from ..io.format import read_archive, write_archive
from ..network.graph import RoadNetwork
from ..trajectories.model import UncertainTrajectory

MANIFEST_NAME = "manifest.json"
SEGMENT_DIR = "segments"
MANIFEST_FORMAT = "utcq-stream-manifest"
MANIFEST_VERSION = 1

_COMPONENT_FIELDS = (
    "time", "edge", "distance", "flags", "probability", "overhead",
)


class StreamArchiveError(Exception):
    """Raised when a stream-archive directory or manifest is invalid."""


# ----------------------------------------------------------------------
# manifest (de)serialization helpers
# ----------------------------------------------------------------------
def _params_to_dict(params: CompressionParams) -> dict:
    return {
        "eta_distance": params.eta_distance,
        "eta_probability": params.eta_probability,
        "default_interval": params.default_interval,
        "symbol_width": params.symbol_width,
        "t0_bits": params.t0_bits,
        "pivot_count": params.pivot_count,
    }


def _params_from_dict(data: dict) -> CompressionParams:
    try:
        return CompressionParams(**data)
    except TypeError as error:
        raise StreamArchiveError(f"bad params in manifest: {error}") from None


def _stats_to_list(stats: CompressionStats) -> list[int]:
    return [getattr(stats.original, f) for f in _COMPONENT_FIELDS] + [
        getattr(stats.compressed, f) for f in _COMPONENT_FIELDS
    ]


def _stats_from_list(values: list[int]) -> CompressionStats:
    if len(values) != 12:
        raise StreamArchiveError(
            f"manifest stats must hold 12 values, got {len(values)}"
        )
    return CompressionStats(
        original=ComponentBits(*values[:6]),
        compressed=ComponentBits(*values[6:]),
    )


@dataclass(frozen=True)
class SegmentInfo:
    """One sealed segment as recorded in the manifest."""

    name: str
    trajectory_count: int
    instance_count: int
    min_trajectory_id: int
    max_trajectory_id: int
    min_time: int
    max_time: int
    file_bytes: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "trajectory_count": self.trajectory_count,
            "instance_count": self.instance_count,
            "min_trajectory_id": self.min_trajectory_id,
            "max_trajectory_id": self.max_trajectory_id,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "file_bytes": self.file_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentInfo":
        try:
            return cls(**data)
        except TypeError as error:
            raise StreamArchiveError(
                f"bad segment entry in manifest: {error}"
            ) from None


def load_manifest(directory) -> dict:
    """Read and validate a stream-archive manifest; returns its dict."""
    path = Path(directory) / MANIFEST_NAME
    try:
        with open(path, encoding="utf-8") as stream:
            manifest = json.load(stream)
    except FileNotFoundError:
        raise StreamArchiveError(
            f"no stream archive at {directory} (missing {MANIFEST_NAME})"
        ) from None
    except json.JSONDecodeError as error:
        raise StreamArchiveError(f"corrupt manifest {path}: {error}") from None
    if manifest.get("format") != MANIFEST_FORMAT:
        raise StreamArchiveError(
            f"{path} is not a stream-archive manifest"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise StreamArchiveError(
            f"unsupported manifest version {manifest.get('version')}"
        )
    return manifest


def manifest_segments(manifest: dict) -> list[SegmentInfo]:
    return [SegmentInfo.from_dict(entry) for entry in manifest["segments"]]


class AppendableArchiveWriter:
    """Seals uncertain trips into rotating ``.utcq`` segment files.

    Use as a context manager (or call :meth:`close`, which seals the
    remaining buffer)::

        with AppendableArchiveWriter(path, network, default_interval=10) as w:
            for trip in trips:
                w.append(trip)
    """

    def __init__(
        self,
        directory,
        network: RoadNetwork,
        *,
        default_interval: int,
        eta_distance: float = DEFAULT_ETA_DISTANCE,
        eta_probability: float = DEFAULT_ETA_PROBABILITY,
        pivot_count: int = 1,
        seed: int = 17,
        segment_max_trajectories: int = 64,
        t0_bits: int = 32,
        provenance: dict[str, str] | None = None,
    ) -> None:
        if segment_max_trajectories < 1:
            raise ValueError("segment_max_trajectories must be >= 1")
        self.directory = Path(directory)
        self.segments_directory = self.directory / SEGMENT_DIR
        self.segments_directory.mkdir(parents=True, exist_ok=True)
        self._compressor = UTCQCompressor(
            network=network,
            default_interval=default_interval,
            eta_distance=eta_distance,
            eta_probability=eta_probability,
            pivot_count=pivot_count,
            seed=seed,
        )
        self.params = CompressionParams(
            eta_distance=eta_distance,
            eta_probability=eta_probability,
            default_interval=default_interval,
            symbol_width=uint_width(network.max_out_degree),
            t0_bits=t0_bits,
            pivot_count=pivot_count,
        )
        self.segment_max_trajectories = segment_max_trajectories
        self.provenance = dict(provenance or {})
        self._pending: list[CompressedTrajectory] = []
        self._segments: list[SegmentInfo] = []
        self._stats = CompressionStats()
        self._last_id = -1
        self._closed = False
        if (self.directory / MANIFEST_NAME).exists():
            self._resume()
        else:
            self._write_manifest()

    def _resume(self) -> None:
        manifest = load_manifest(self.directory)
        existing = _params_from_dict(manifest["params"])
        if existing != self.params:
            raise StreamArchiveError(
                f"cannot append to {self.directory}: existing params "
                f"{existing} differ from writer params {self.params}"
            )
        self._segments = manifest_segments(manifest)
        self._stats = _stats_from_list(manifest["stats"])
        existing_provenance = dict(manifest.get("provenance", {}))
        if not self.provenance:
            self.provenance = existing_provenance
        elif existing_provenance and self.provenance != existing_provenance:
            # params can coincide across different source networks (same
            # grid degree and interval); provenance is the identity check
            # that keeps trips matched against network A from being
            # appended next to trips matched against network B
            raise StreamArchiveError(
                f"cannot append to {self.directory}: its provenance "
                f"{existing_provenance} differs from the writer's "
                f"{self.provenance}"
            )
        if self._segments:
            self._last_id = max(s.max_trajectory_id for s in self._segments)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def next_trajectory_id(self) -> int:
        """Smallest id :meth:`append` will accept (resume support)."""
        return self._last_id + 1

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def sealed_trajectory_count(self) -> int:
        return sum(s.trajectory_count for s in self._segments)

    @property
    def stats(self) -> CompressionStats:
        """Aggregate stats over every trip sealed so far (incl. pending)."""
        return self._stats

    def segments(self) -> list[SegmentInfo]:
        return list(self._segments)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def append(self, trajectory: UncertainTrajectory) -> None:
        """Compress one sealed trip into the current segment buffer."""
        if self._closed:
            raise StreamArchiveError("writer is closed")
        if trajectory.trajectory_id <= self._last_id:
            raise StreamArchiveError(
                f"trajectory ids must be strictly increasing: got "
                f"{trajectory.trajectory_id} after {self._last_id}"
            )
        compressed = self._compressor.compress_trajectory(
            trajectory,
            self.params,
            self._compressor.trajectory_rng(trajectory.trajectory_id),
        )
        self._last_id = trajectory.trajectory_id
        self._pending.append(compressed)
        self._stats.add(compressed.stats)
        if len(self._pending) >= self.segment_max_trajectories:
            self.seal_segment()

    def seal_segment(self) -> SegmentInfo | None:
        """Write the buffered trips as one ``.utcq`` segment file."""
        if self._closed:
            raise StreamArchiveError("writer is closed")
        if not self._pending:
            return None
        name = f"seg-{len(self._segments):05d}.utcq"
        archive = CompressedArchive(
            params=self.params, trajectories=list(self._pending)
        )
        size = write_archive(
            archive, self.segments_directory / name, provenance=self.provenance
        )
        info = SegmentInfo(
            name=name,
            trajectory_count=archive.trajectory_count,
            instance_count=archive.instance_count,
            min_trajectory_id=self._pending[0].trajectory_id,
            max_trajectory_id=self._pending[-1].trajectory_id,
            min_time=min(t.start_time for t in self._pending),
            max_time=max(t.end_time for t in self._pending),
            file_bytes=size,
        )
        self._segments.append(info)
        self._pending.clear()
        self._write_manifest()
        return info

    def close(self) -> None:
        """Seal the remaining buffer and stop accepting trips."""
        if self._closed:
            return
        self.seal_segment()
        self._closed = True

    def __enter__(self) -> "AppendableArchiveWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "params": _params_to_dict(self.params),
            "provenance": self.provenance,
            "stats": _stats_to_list(self._stats),
            "trajectory_count": self.sealed_trajectory_count,
            "instance_count": sum(s.instance_count for s in self._segments),
            "segments": [s.as_dict() for s in self._segments],
        }
        tmp = self.directory / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(manifest, stream, indent=2, sort_keys=True)
            stream.write("\n")
        os.replace(tmp, self.directory / MANIFEST_NAME)


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
def compact(
    directory,
    output,
    *,
    extra_provenance: dict[str, str] | None = None,
    network: RoadNetwork | None = None,
    grid_cells_per_side: int = 32,
    time_partition_seconds: int = 1800,
) -> tuple[int, int]:
    """Merge all sealed segments into one canonical ``.utcq`` archive.

    Every segment is read back with full CRC verification, the records
    are concatenated in trajectory-id order, and the result is written
    through the ordinary batch serializer — the output is
    byte-compatible with :func:`repro.io.format.write_archive` and
    carries the manifest's provenance (plus ``compacted_segments``).
    Returns ``(file_bytes, trajectory_count)``.  The segment files are
    left in place; delete the directory once the compacted archive is
    verified.

    With ``network`` the compacted archive also gets a persistent StIU
    sidecar (``<output>.stiu``), so the first query against it skips
    the index rebuild — the same warm-open path ``repro compress``
    produces.
    """
    directory = Path(directory)
    manifest = load_manifest(directory)
    params = _params_from_dict(manifest["params"])
    segments = manifest_segments(manifest)
    trajectories: list[CompressedTrajectory] = []
    for info in segments:
        segment = read_archive(directory / SEGMENT_DIR / info.name)
        if segment.params != params:
            raise StreamArchiveError(
                f"segment {info.name} params differ from the manifest"
            )
        trajectories.extend(segment.trajectories)
    seen: set[int] = set()
    for trajectory in trajectories:
        if trajectory.trajectory_id in seen:
            raise StreamArchiveError(
                f"duplicate trajectory id {trajectory.trajectory_id} "
                f"across segments"
            )
        seen.add(trajectory.trajectory_id)
    trajectories.sort(key=lambda t: t.trajectory_id)
    archive = CompressedArchive(params=params, trajectories=trajectories)
    provenance = dict(manifest.get("provenance", {}))
    provenance["compacted_segments"] = str(len(segments))
    provenance.update(extra_provenance or {})
    size = write_archive(archive, output, provenance=provenance)
    if network is not None:
        from ..query.sidecar import save_index
        from ..query.stiu import StIUIndex

        index = StIUIndex(
            network,
            archive,
            grid_cells_per_side=grid_cells_per_side,
            time_partition_seconds=time_partition_seconds,
        )
        save_index(index, output)
    return size, archive.trajectory_count
