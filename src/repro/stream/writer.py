"""Appendable archives: rotating ``.utcq`` segments plus a crash-safe
versioned manifest.

The batch ``.utcq`` format is write-once (header counts, directory and
dataset-wide stats are all computed up front), which is exactly wrong
for ingestion.  :class:`AppendableArchiveWriter` keeps the format
untouched and gains appendability one level up, the way log-structured
stores do:

* sealed trips are compressed immediately (deterministically, via the
  per-trajectory RNG) and buffered;
* every ``segment_max_trajectories`` trips the buffer is written as an
  ordinary, self-contained ``.utcq`` **segment** under ``segments/``
  (tmp + fsync + rename, so a torn segment is never visible under its
  final name), together with a per-segment ``.stiu`` index sidecar so
  live queries never rebuild an index;
* the :class:`~repro.stream.manifest.ManifestStore` commits a new
  manifest generation after each seal — atomic rename, durable fsyncs,
  monotonic generation numbers.

Every segment is a valid archive readable by the standard
:class:`~repro.io.reader.FileBackedArchive`, so a
:class:`~repro.stream.live.LiveArchive` can union the sealed segments
for querying *while ingestion continues*, and a
:class:`~repro.stream.compaction.CompactionDaemon` can merge rotated
segments in the background through the shared store.  :func:`compact`
merges all segments into one archive byte-compatible with
:mod:`repro.io.format` — indistinguishable from a batch-written file,
whatever compaction history the segments went through.

Because ingestion cannot know the dataset-wide maximum start time the
batch pipeline derives ``t0_bits`` from, the writer fixes ``t0_bits``
(default 32) up front; the parameter travels in the header, so readers,
indexes and queries are unaffected.

A writer re-opened on an existing directory first runs
:func:`~repro.stream.manifest.recover` (adopting or deleting any
orphan a crash left behind) and then resumes appending: the manifest is
the recovery point, and an interrupted run loses at most the unsealed
buffer, never a sealed segment.
"""

from __future__ import annotations

from pathlib import Path

from ..bits.bitio import uint_width
from ..core.archive import (
    CompressedArchive,
    CompressedTrajectory,
    CompressionParams,
    CompressionStats,
)
from ..core.compressor import (
    DEFAULT_ETA_DISTANCE,
    DEFAULT_ETA_PROBABILITY,
    UTCQCompressor,
)
from ..io.format import read_archive, write_archive
from ..network.graph import RoadNetwork
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from ..trajectories.model import UncertainTrajectory
from .manifest import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    SEGMENT_DIR,
    Filesystem,
    ManifestStore,
    RecoveryReport,
    SegmentInfo,
    StreamArchiveError,
    load_manifest,
    manifest_segments,
    params_from_dict as _params_from_dict,
    params_to_dict as _params_to_dict,
    recover,
    stats_from_list as _stats_from_list,
    stats_to_list as _stats_to_list,
)

_log = get_logger("repro.stream.writer")

__all__ = [
    "AppendableArchiveWriter",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "SEGMENT_DIR",
    "SegmentInfo",
    "StreamArchiveError",
    "compact",
    "load_manifest",
    "manifest_segments",
    "write_segment_file",
]


def write_segment_file(
    archive: CompressedArchive,
    path,
    *,
    provenance: dict[str, str],
    fs: Filesystem,
) -> int:
    """Write ``archive`` to ``path`` atomically; returns the file size.

    The bytes land under ``path + '.tmp'`` first, are fsynced, renamed
    over the final name, and the parent directory is fsynced — the
    sequence whose every boundary the crash-injection suite kills at.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    size = write_archive(archive, tmp, provenance=provenance)
    fs.fsync_path(tmp)
    fs.replace(tmp, path)
    fs.fsync_dir(path.parent)
    return size


class AppendableArchiveWriter:
    """Seals uncertain trips into rotating ``.utcq`` segment files.

    Use as a context manager (or call :meth:`close`, which seals the
    remaining buffer)::

        with AppendableArchiveWriter(path, network, default_interval=10) as w:
            for trip in trips:
                w.append(trip)

    ``write_sidecars`` (default on) builds the per-segment StIU index
    at rotation time and persists it as ``<segment>.stiu``, so a
    :class:`~repro.stream.live.LiveArchive` never pays an index rebuild;
    pass ``False`` to trade first-query latency for ingest throughput.
    """

    def __init__(
        self,
        directory,
        network: RoadNetwork,
        *,
        default_interval: int,
        eta_distance: float = DEFAULT_ETA_DISTANCE,
        eta_probability: float = DEFAULT_ETA_PROBABILITY,
        pivot_count: int = 1,
        seed: int = 17,
        segment_max_trajectories: int = 64,
        t0_bits: int = 32,
        provenance: dict[str, str] | None = None,
        write_sidecars: bool = True,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
        fs: Filesystem | None = None,
    ) -> None:
        if segment_max_trajectories < 1:
            raise ValueError("segment_max_trajectories must be >= 1")
        self.directory = Path(directory)
        self.segments_directory = self.directory / SEGMENT_DIR
        self.network = network
        self._compressor = UTCQCompressor(
            network=network,
            default_interval=default_interval,
            eta_distance=eta_distance,
            eta_probability=eta_probability,
            pivot_count=pivot_count,
            seed=seed,
        )
        self.params = CompressionParams(
            eta_distance=eta_distance,
            eta_probability=eta_probability,
            default_interval=default_interval,
            symbol_width=uint_width(network.max_out_degree),
            t0_bits=t0_bits,
            pivot_count=pivot_count,
        )
        self.segment_max_trajectories = segment_max_trajectories
        self.provenance = dict(provenance or {})
        self.write_sidecars = write_sidecars
        self.grid_cells_per_side = grid_cells_per_side
        self.time_partition_seconds = time_partition_seconds
        self._pending: list[CompressedTrajectory] = []
        self._last_id = -1
        self._closed = False
        self.last_recovery: RecoveryReport | None = None
        if (self.directory / MANIFEST_NAME).exists():
            self.store = ManifestStore.open(self.directory, fs=fs)
            self._resume()
        else:
            self.store = ManifestStore.create(
                self.directory, self.params, self.provenance, fs=fs
            )

    def _resume(self) -> None:
        store = self.store
        if store.state.params != self.params:
            raise StreamArchiveError(
                f"cannot append to {self.directory}: existing params "
                f"{store.state.params} differ from writer params "
                f"{self.params}"
            )
        existing_provenance = dict(store.state.provenance)
        if not self.provenance:
            self.provenance = existing_provenance
        elif existing_provenance and self.provenance != existing_provenance:
            # params can coincide across different source networks (same
            # grid degree and interval); provenance is the identity check
            # that keeps trips matched against network A from being
            # appended next to trips matched against network B
            raise StreamArchiveError(
                f"cannot append to {self.directory}: its provenance "
                f"{existing_provenance} differs from the writer's "
                f"{self.provenance}"
            )
        # reconcile the directory with the manifest: a crash between a
        # segment rename and its manifest commit leaves an orphan that
        # must be adopted (its trips are sealed!) or swept
        self.last_recovery = recover(store)
        self._last_id = store.last_trajectory_id

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def next_trajectory_id(self) -> int:
        """Smallest id :meth:`append` will accept (resume support)."""
        return self._last_id + 1

    @property
    def segment_count(self) -> int:
        return len(self.store.segments())

    @property
    def sealed_trajectory_count(self) -> int:
        return sum(s.trajectory_count for s in self.store.segments())

    @property
    def generation(self) -> int:
        """Manifest generation last committed for this directory."""
        return self.store.state.generation

    @property
    def stats(self) -> CompressionStats:
        """Aggregate stats over every sealed trip (plus the buffer)."""
        total = CompressionStats()
        total.add(self.store.state.stats)
        for trajectory in self._pending:
            total.add(trajectory.stats)
        return total

    def segments(self) -> list[SegmentInfo]:
        return self.store.segments()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def append(self, trajectory: UncertainTrajectory) -> None:
        """Compress one sealed trip into the current segment buffer."""
        if self._closed:
            raise StreamArchiveError("writer is closed")
        if trajectory.trajectory_id <= self._last_id:
            raise StreamArchiveError(
                f"trajectory ids must be strictly increasing: got "
                f"{trajectory.trajectory_id} after {self._last_id}"
            )
        compressed = self._compressor.compress_trajectory(
            trajectory,
            self.params,
            self._compressor.trajectory_rng(trajectory.trajectory_id),
        )
        self._last_id = trajectory.trajectory_id
        self._pending.append(compressed)
        if len(self._pending) >= self.segment_max_trajectories:
            self.seal_segment()

    def seal_segment(self) -> SegmentInfo | None:
        """Write the buffered trips as one ``.utcq`` segment file."""
        if self._closed:
            raise StreamArchiveError("writer is closed")
        if not self._pending:
            return None
        store = self.store
        archive = CompressedArchive(
            params=self.params, trajectories=list(self._pending)
        )
        with store.lock:
            name = store.allocate_segment_name()
            size = write_segment_file(
                archive,
                store.segment_path(name),
                provenance=self.provenance,
                fs=store.fs,
            )
            if self.write_sidecars:
                self._write_segment_sidecar(archive, name)
            info = SegmentInfo(
                name=name,
                trajectory_count=archive.trajectory_count,
                instance_count=archive.instance_count,
                min_trajectory_id=self._pending[0].trajectory_id,
                max_trajectory_id=self._pending[-1].trajectory_id,
                min_time=min(t.start_time for t in self._pending),
                max_time=max(t.end_time for t in self._pending),
                file_bytes=size,
                level=0,
            )
            store.add_segment(info, added_stats=archive.stats)
        self._pending.clear()
        obs_metrics.counter("repro_stream_segments_sealed_total").inc()
        obs_metrics.counter("repro_stream_bytes_sealed_total").inc(size)
        _log.info(
            "stream.segment_sealed",
            segment=name,
            trajectories=info.trajectory_count,
            bytes=size,
        )
        return info

    def _write_segment_sidecar(
        self, archive: CompressedArchive, name: str
    ) -> None:
        from ..query.sidecar import save_index
        from ..query.stiu import StIUIndex

        index = StIUIndex(
            self.network,
            archive,
            grid_cells_per_side=self.grid_cells_per_side,
            time_partition_seconds=self.time_partition_seconds,
        )
        save_index(
            index,
            self.store.segment_path(name),
            sidecar_path=self.store.sidecar_path(name),
        )

    def close(self) -> None:
        """Seal the remaining buffer and stop accepting trips."""
        if self._closed:
            return
        self.seal_segment()
        self._closed = True

    def __enter__(self) -> "AppendableArchiveWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# one-shot compaction to a canonical batch archive
# ----------------------------------------------------------------------
def compact(
    directory,
    output,
    *,
    extra_provenance: dict[str, str] | None = None,
    network: RoadNetwork | None = None,
    grid_cells_per_side: int = 32,
    time_partition_seconds: int = 1800,
) -> tuple[int, int]:
    """Merge all sealed segments into one canonical ``.utcq`` archive.

    Every segment is read back with full CRC verification, the records
    are concatenated in trajectory-id order, and the result is written
    through the ordinary batch serializer — the output is
    byte-compatible with :func:`repro.io.format.write_archive` and
    carries the manifest's provenance (plus ``compacted_trajectories``).
    Because background compaction preserves record bytes and id order,
    the output is byte-identical whatever merge schedule the segments
    went through.  Returns ``(file_bytes, trajectory_count)``.  The
    segment files are left in place; delete the directory once the
    compacted archive is verified.

    With ``network`` the compacted archive also gets a persistent StIU
    sidecar (``<output>.stiu``), so the first query against it skips
    the index rebuild — the same warm-open path ``repro compress``
    produces.
    """
    directory = Path(directory)
    manifest = load_manifest(directory)
    params = _params_from_dict(manifest["params"])
    segments = manifest_segments(manifest)
    trajectories: list[CompressedTrajectory] = []
    for info in segments:
        segment = read_archive(directory / SEGMENT_DIR / info.name)
        if segment.params != params:
            raise StreamArchiveError(
                f"segment {info.name} params differ from the manifest"
            )
        trajectories.extend(segment.trajectories)
    seen: set[int] = set()
    for trajectory in trajectories:
        if trajectory.trajectory_id in seen:
            raise StreamArchiveError(
                f"duplicate trajectory id {trajectory.trajectory_id} "
                f"across segments"
            )
        seen.add(trajectory.trajectory_id)
    trajectories.sort(key=lambda t: t.trajectory_id)
    archive = CompressedArchive(params=params, trajectories=trajectories)
    provenance = dict(manifest.get("provenance", {}))
    # Deliberately schedule-invariant: the segment count depends on how
    # many background merges ran, and would break byte-identity of the
    # compacted output across compaction histories.
    provenance["compacted_trajectories"] = str(len(trajectories))
    provenance.update(extra_provenance or {})
    size = write_archive(archive, output, provenance=provenance)
    if network is not None:
        from ..query.sidecar import save_index
        from ..query.stiu import StIUIndex

        index = StIUIndex(
            network,
            archive,
            grid_cells_per_side=grid_cells_per_side,
            time_partition_seconds=time_partition_seconds,
        )
        save_index(index, output)
    return size, archive.trajectory_count
