"""Online map matching over a live point feed.

:class:`StreamingMapMatcher` consumes GPS fixes one at a time and
maintains exactly the list-Viterbi beam the batch matcher builds: every
accepted fix runs one :meth:`~repro.mapmatching.hmm.ProbabilisticMapMatcher.
candidate_step` + :meth:`~repro.mapmatching.hmm.ProbabilisticMapMatcher.
extend_beam`, so :meth:`finish` produces the **same**
:class:`~repro.trajectories.model.UncertainTrajectory` a batch
:meth:`~repro.mapmatching.hmm.ProbabilisticMapMatcher.match` call would
produce over the accepted points (the equivalence tests assert this).

Two things make the matcher suitable for an unbounded feed:

* **admission control** — stale fixes (timestamp not after the last
  accepted one) are dropped, and a fix that cannot be joined to the
  running beam (no candidates, or no plausible route from any surviving
  partial) is *rejected without corrupting the trip*: the beam is left
  untouched so the caller can seal the trip-so-far and start a new one
  at the offending fix (what :class:`~repro.stream.session.
  TripSessionizer` does);
* **fixed-lag decoding** — :meth:`fixed_lag_estimate` reads the best
  partial's position ``fixed_lag`` steps behind the feed head.  By then
  the beam has usually collapsed onto one history
  (:meth:`agreed_prefix_length` reports how far the collapse has
  progressed), so the estimate is stable under future evidence while
  costing O(1) per call — the standard fixed-lag approximation of
  full Viterbi smoothing.

Transition scoring routes through the underlying matcher's shared
:class:`~repro.network.shortest_path.FrontierCache` — one lazily-settled
Dijkstra per (source vertex, cutoff) reused across all candidate pairs.
Because the sessionizer hands every vehicle's streaming matcher the same
:class:`~repro.mapmatching.hmm.ProbabilisticMapMatcher`, the whole fleet
shares one cache: a vehicle crossing an intersection another vehicle
just crossed reuses its settled frontier.  Sealed outputs are identical
with or without the cache (see :class:`~repro.network.shortest_path.
SharedFrontier` for the argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..mapmatching.candidates import Candidate
from ..mapmatching.hmm import (
    BeamPartial,
    MatcherConfig,
    ProbabilisticMapMatcher,
)
from ..network.graph import RoadNetwork
from ..trajectories.model import MappedLocation, RawPoint, UncertainTrajectory


class ObserveStatus(Enum):
    """What happened to one fix offered to :meth:`StreamingMapMatcher.observe`."""

    #: the fix extended the beam and is now part of the trip
    ACCEPTED = "accepted"
    #: timestamp not after the last accepted fix; dropped
    STALE = "stale"
    #: no candidate/transition joins the fix to the trip; beam unchanged,
    #: the trip should be cut here
    UNMATCHABLE = "unmatchable"


@dataclass
class StreamCounters:
    """Feed accounting of one streaming matcher."""

    accepted: int = 0
    stale: int = 0
    unmatchable: int = 0


class StreamingMapMatcher:
    """Incremental HMM map matching of one vehicle's point feed.

    Either pass a ``network`` (and optional ``config``) to build a
    private :class:`ProbabilisticMapMatcher`, or pass an existing
    ``matcher`` so many streaming matchers share one spatial index (the
    sessionizer does this for its whole fleet).
    """

    def __init__(
        self,
        network: RoadNetwork | None = None,
        config: MatcherConfig | None = None,
        *,
        matcher: ProbabilisticMapMatcher | None = None,
        fixed_lag: int = 8,
    ) -> None:
        if matcher is None:
            if network is None:
                raise ValueError("pass either a network or a matcher")
            matcher = ProbabilisticMapMatcher(network, config)
        if fixed_lag < 0:
            raise ValueError(f"fixed_lag must be >= 0, got {fixed_lag}")
        self.matcher = matcher
        self.fixed_lag = fixed_lag
        self.counters = StreamCounters()
        self._points: list[RawPoint] = []
        self._steps: list[list[Candidate]] = []
        self._beam: list[BeamPartial] = []

    # ------------------------------------------------------------------
    # feed state
    # ------------------------------------------------------------------
    @property
    def point_count(self) -> int:
        """Accepted fixes in the current trip."""
        return len(self._points)

    @property
    def frontier_cache(self):
        """The routing cache shared with (and owned by) the matcher."""
        return self.matcher.frontier_cache

    @property
    def start_time(self) -> int:
        if not self._points:
            raise ValueError("no accepted fix yet")
        return self._points[0].t

    @property
    def last_time(self) -> int:
        if not self._points:
            raise ValueError("no accepted fix yet")
        return self._points[-1].t

    def reset(self) -> None:
        """Drop the current trip state (counters are kept)."""
        self._points.clear()
        self._steps.clear()
        self._beam = []

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe(self, point: RawPoint) -> ObserveStatus:
        """Offer one fix to the trip; see :class:`ObserveStatus`.

        A rejected fix (``STALE`` / ``UNMATCHABLE``) leaves the trip
        state exactly as it was.
        """
        if self._points and point.t <= self._points[-1].t:
            self.counters.stale += 1
            return ObserveStatus.STALE
        step = self.matcher.candidate_step(point)
        if not step:
            self.counters.unmatchable += 1
            return ObserveStatus.UNMATCHABLE
        if not self._points:
            beam = self.matcher.initial_beam(step)
        else:
            previous = self._points[-1]
            straight = math.hypot(
                point.x - previous.x, point.y - previous.y
            )
            beam = self.matcher.extend_beam(
                self._beam, self._steps[-1], step, straight
            )
        if not beam:
            self.counters.unmatchable += 1
            return ObserveStatus.UNMATCHABLE
        self._points.append(point)
        self._steps.append(step)
        self._beam = beam
        self.counters.accepted += 1
        return ObserveStatus.ACCEPTED

    def finish(self) -> UncertainTrajectory | None:
        """Seal the trip: assemble the beam and reset for the next one.

        Returns the same uncertain trajectory a batch ``match()`` over
        the accepted points would return (``None`` for an empty feed or
        a degenerate beam).
        """
        if not self._points:
            return None
        trajectory = self.matcher.finalize(
            self._steps, self._beam, [p.t for p in self._points]
        )
        self.reset()
        return trajectory

    # ------------------------------------------------------------------
    # fixed-lag decoding
    # ------------------------------------------------------------------
    def agreed_prefix_length(self) -> int:
        """Steps on which *every* surviving partial agrees.

        This prefix is committed: no future evidence can change it,
        because extending a beam never rewrites partial histories.
        """
        if not self._beam:
            return 0
        first = self._beam[0].candidate_indices
        agreed = len(first)
        for partial in self._beam[1:]:
            indices = partial.candidate_indices
            limit = min(agreed, len(indices))
            agreed = 0
            for i in range(limit):
                if indices[i] != first[i]:
                    break
                agreed = i + 1
            if agreed == 0:
                return 0
        return agreed

    def fixed_lag_estimate(self) -> tuple[int, MappedLocation] | None:
        """Best current position ``fixed_lag`` steps behind the head.

        Returns ``(step_index, location)`` read from the most probable
        partial, or ``None`` before the first accepted fix.  With the
        default lag the estimate is almost always inside the agreed
        prefix, i.e. final.
        """
        if not self._beam:
            return None
        index = max(0, len(self._points) - 1 - self.fixed_lag)
        best = max(self._beam, key=lambda p: p.log_probability)
        candidate = self._steps[index][best.candidate_indices[index]]
        return index, self.matcher.candidate_location(candidate)
