"""Replay a dataset of raw GPS feeds as one timestamped fleet stream.

Turns per-vehicle :class:`~repro.trajectories.model.RawTrajectory`
feeds into a single globally time-ordered event stream (what a real
ingestion endpoint receives from a fleet) and drives it through a
:class:`~repro.stream.session.TripSessionizer` — optionally paced at
``N×`` real time, optionally writing sealed trips straight into an
:class:`~repro.stream.writer.AppendableArchiveWriter` — and reports the
sustained ingestion rate in points per second.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from ..trajectories.model import RawPoint, RawTrajectory, UncertainTrajectory
from .session import TripSessionizer
from .writer import AppendableArchiveWriter


@dataclass
class ReplayReport:
    """What one replay run did."""

    points: int
    trips_sealed: int
    trips_discarded: int
    elapsed_seconds: float
    first_time: int | None = None
    last_time: int | None = None

    @property
    def points_per_second(self) -> float:
        """Sustained ingestion rate (wall clock, not feed time)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.points / self.elapsed_seconds

    @property
    def feed_seconds(self) -> int:
        if self.first_time is None or self.last_time is None:
            return 0
        return self.last_time - self.first_time


def feed_events(
    feeds: Mapping[Hashable, RawTrajectory] | Sequence[RawTrajectory],
) -> Iterator[tuple[Hashable, RawPoint]]:
    """Merge per-vehicle feeds into one stream ordered by timestamp.

    A sequence of raw trajectories is treated as vehicles ``0..n-1``.
    Each vehicle's feed is already time-ordered, so the merge is a heap
    merge — O(log v) per point, streaming, never materialized.
    """
    if isinstance(feeds, Mapping):
        items = list(feeds.items())
    else:
        items = list(enumerate(feeds))

    def tagged(order: int, vehicle: Hashable, raw: RawTrajectory):
        for point in raw:
            yield point.t, order, vehicle, point

    streams = [
        tagged(order, vehicle, raw)
        for order, (vehicle, raw) in enumerate(items)
    ]
    for _, _, vehicle, point in heapq.merge(*streams):
        yield vehicle, point


def replay(
    sessionizer: TripSessionizer,
    feeds: Mapping[Hashable, RawTrajectory] | Sequence[RawTrajectory],
    *,
    writer: AppendableArchiveWriter | None = None,
    daemon=None,
    speed: float = 0.0,
    on_trip: Callable[[UncertainTrajectory], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ReplayReport:
    """Drive ``feeds`` through the sessionizer as one live stream.

    ``speed`` scales feed time to wall time: ``60`` replays an hour of
    GPS in one minute, ``0`` (the default) replays as fast as the
    machine can ingest — the throughput-benchmark mode.  ``writer``
    receives every sealed trip immediately (so segments seal, and a
    :class:`~repro.stream.live.LiveArchive` can be queried, mid-replay);
    the writer is flushed via :meth:`~AppendableArchiveWriter.
    seal_segment` at the end but **not** closed — the caller owns it.
    ``daemon`` is an optional
    :class:`~repro.stream.compaction.CompactionDaemon` to
    :meth:`~repro.stream.compaction.CompactionDaemon.notify` whenever a
    segment rotates, so background merges chase ingestion instead of
    polling.  ``on_trip`` is called with every sealed trip.
    """
    if speed < 0:
        raise ValueError(f"speed must be >= 0, got {speed}")
    sealed_before = sessionizer.counters.trips_sealed
    discarded_before = sessionizer.counters.trips_discarded
    points = 0
    first_time: int | None = None
    last_time: int | None = None
    started = time.perf_counter()

    def deliver(trips: Iterable[UncertainTrajectory]) -> None:
        for trip in trips:
            if writer is not None:
                before = writer.segment_count
                writer.append(trip)
                if daemon is not None and writer.segment_count != before:
                    daemon.notify()
            if on_trip is not None:
                on_trip(trip)

    for vehicle, point in feed_events(feeds):
        if first_time is None:
            first_time = point.t
        if speed > 0:
            due = started + (point.t - first_time) / speed
            delay = due - time.perf_counter()
            if delay > 0:
                sleep(delay)
        last_time = point.t
        points += 1
        deliver(sessionizer.observe(vehicle, point))
    deliver(sessionizer.flush())
    if writer is not None:
        if writer.seal_segment() is not None and daemon is not None:
            daemon.notify()
    return ReplayReport(
        points=points,
        trips_sealed=sessionizer.counters.trips_sealed - sealed_before,
        trips_discarded=sessionizer.counters.trips_discarded
        - discarded_before,
        elapsed_seconds=time.perf_counter() - started,
        first_time=first_time,
        last_time=last_time,
    )
