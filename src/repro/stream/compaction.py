"""Background LSM-style compaction and retention for stream archives.

PR 2's :func:`~repro.stream.writer.compact` is a single-shot,
stop-the-world merge: fine for a finished run, wrong for a service that
ingests forever.  This module adds the storage-engine answer —
incremental merges of rotated segments while ingestion continues:

* **Policies** decide *what* to merge.  :class:`SizeTieredPolicy`
  merges runs of similarly-sized segments (the Cassandra/RocksDB
  universal shape); :class:`LeveledPolicy` promotes the oldest
  ``fanout`` segments of the fullest level into one segment at the next
  level, so segment count stays ``O(fanout · log n)``.
* :func:`merge_segments` performs one merge crash-safely: the merged
  segment (and its ``.stiu`` sidecar) is written tmp + fsync + rename
  under a fresh name, the manifest swap of the source entries for the
  merged entry is a single committed generation, and only then are the
  source files unlinked.  A crash at any boundary is repaired by
  :func:`~repro.stream.manifest.recover` — an uncommitted merge output
  is swept, committed-but-not-unlinked sources are swept, and no
  sealed trip is ever lost or duplicated.
* :class:`CompactionDaemon` runs a policy on a background thread
  against the *same* :class:`~repro.stream.manifest.ManifestStore` the
  writer commits through, so seals and merges interleave under one
  lock while queries keep flowing.
* :func:`gc_segments` is time-partitioned retention: whole cold
  segments (``max_time`` before the cutoff) are dropped from the
  manifest and deleted — the drop-a-day path of the production story.

Record bytes are never rewritten, only regrouped, and trajectory-id
order is preserved — so the canonical one-shot ``compact()`` output is
byte-identical whatever merge schedule ran before it (the
compaction-equivalence property suite pins this with SHA-256).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

from ..core.archive import CompressedArchive, CompressedTrajectory
from ..io.format import read_archive, read_header
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from .manifest import ManifestStore, SegmentInfo, StreamArchiveError

_log = get_logger("repro.stream.compaction")


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompactionTask:
    """One planned merge: which segments, and the level of the output."""

    segments: tuple[SegmentInfo, ...]
    target_level: int

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.segments]


class CompactionPolicy:
    """Decides which sealed segments to merge next (or nothing)."""

    def plan(self, segments: list[SegmentInfo]) -> CompactionTask | None:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class SizeTieredPolicy(CompactionPolicy):
    """Merge runs of similarly-sized segments, smallest tiers first.

    Segments (in trajectory-id order) whose file sizes stay within
    ``size_ratio`` of the run's smallest member form a tier; the first
    run of at least ``min_merge`` members is merged (capped at
    ``max_merge``).  Small fresh segments therefore coalesce quickly
    while big merged ones are left alone until enough peers exist.
    """

    min_merge: int = 4
    max_merge: int = 8
    size_ratio: float = 4.0

    def __post_init__(self) -> None:
        if self.min_merge < 2:
            raise ValueError("min_merge must be >= 2")
        if self.max_merge < self.min_merge:
            raise ValueError("max_merge must be >= min_merge")
        if self.size_ratio < 1.0:
            raise ValueError("size_ratio must be >= 1.0")

    def plan(self, segments: list[SegmentInfo]) -> CompactionTask | None:
        ordered = sorted(segments, key=lambda s: s.min_trajectory_id)
        run: list[SegmentInfo] = []
        run_min = 0
        best: list[SegmentInfo] | None = None
        for info in ordered:
            if not run:
                run, run_min = [info], info.file_bytes
                continue
            low = min(run_min, info.file_bytes)
            high = max(
                max(s.file_bytes for s in run), info.file_bytes
            )
            if low > 0 and high <= low * self.size_ratio:
                run.append(info)
                run_min = low
                if len(run) >= self.max_merge:
                    best = run
                    break
            else:
                if len(run) >= self.min_merge:
                    best = run
                    break
                run, run_min = [info], info.file_bytes
        if best is None and len(run) >= self.min_merge:
            best = run
        if best is None:
            return None
        chosen = best[: self.max_merge]
        return CompactionTask(
            segments=tuple(chosen),
            target_level=max(s.level for s in chosen) + 1,
        )

    def describe(self) -> str:
        return (
            f"size-tiered(min={self.min_merge}, max={self.max_merge}, "
            f"ratio={self.size_ratio:g})"
        )


@dataclass
class LeveledPolicy(CompactionPolicy):
    """Promote the oldest ``fanout`` segments of an overfull level.

    Fresh seals land at level 0; whenever any level below ``max_level``
    holds at least ``fanout`` segments, its oldest ``fanout`` (by
    trajectory id) merge into one segment at the next level.  Steady
    state keeps fewer than ``fanout`` segments per level, so the open
    segment count — and with it every LiveArchive refresh — stays
    logarithmic in the trips ingested.
    """

    fanout: int = 4
    max_level: int = 6

    def __post_init__(self) -> None:
        if self.fanout < 2:
            raise ValueError("fanout must be >= 2")
        if self.max_level < 1:
            raise ValueError("max_level must be >= 1")

    def plan(self, segments: list[SegmentInfo]) -> CompactionTask | None:
        by_level: dict[int, list[SegmentInfo]] = {}
        for info in segments:
            by_level.setdefault(info.level, []).append(info)
        for level in sorted(by_level):
            if level >= self.max_level:
                continue
            members = by_level[level]
            if len(members) >= self.fanout:
                members.sort(key=lambda s: s.min_trajectory_id)
                chosen = members[: self.fanout]
                return CompactionTask(
                    segments=tuple(chosen), target_level=level + 1
                )
        return None

    def describe(self) -> str:
        return f"leveled(fanout={self.fanout}, max_level={self.max_level})"


POLICIES = {
    "size-tiered": SizeTieredPolicy,
    "leveled": LeveledPolicy,
}


def make_policy(name: str, **kwargs) -> CompactionPolicy:
    """Instantiate a policy by its CLI name (``size-tiered``/``leveled``)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise StreamArchiveError(
            f"unknown compaction policy {name!r}; "
            f"choose from {sorted(POLICIES)}"
        ) from None
    return factory(**kwargs)


# ----------------------------------------------------------------------
# one merge
# ----------------------------------------------------------------------
def merge_segments(
    store: ManifestStore,
    task: CompactionTask,
    *,
    network=None,
    grid_cells_per_side: int = 32,
    time_partition_seconds: int = 1800,
) -> SegmentInfo:
    """Merge one task's segments into a single new segment, crash-safely.

    Record bytes are preserved exactly (segments are read back with
    full CRC verification and re-serialized unchanged), so downstream
    one-shot compaction stays byte-identical.  With ``network`` the
    merged segment gets a fresh ``.stiu`` sidecar before the manifest
    swap, so live queries stay rebuild-free across compactions.
    """
    from .writer import write_segment_file

    current = {s.name for s in store.segments()}
    missing = [name for name in task.names if name not in current]
    if missing:
        raise StreamArchiveError(
            f"compaction task is stale: {missing} no longer in the manifest"
        )
    trajectories: list[CompressedTrajectory] = []
    for info in task.segments:
        segment = read_archive(store.segment_path(info.name))
        if segment.params != store.state.params:
            raise StreamArchiveError(
                f"segment {info.name} params differ from the manifest"
            )
        trajectories.extend(segment.trajectories)
    trajectories.sort(key=lambda t: t.trajectory_id)
    for first, second in zip(trajectories, trajectories[1:]):
        if first.trajectory_id >= second.trajectory_id:
            raise StreamArchiveError(
                f"duplicate trajectory id {second.trajectory_id} across "
                f"merged segments"
            )
    archive = CompressedArchive(
        params=store.state.params, trajectories=trajectories
    )
    with store.lock:
        name = store.allocate_segment_name()
        size = write_segment_file(
            archive,
            store.segment_path(name),
            provenance=store.state.provenance,
            fs=store.fs,
        )
        if network is not None:
            from ..query.sidecar import save_index
            from ..query.stiu import StIUIndex

            index = StIUIndex(
                network,
                archive,
                grid_cells_per_side=grid_cells_per_side,
                time_partition_seconds=time_partition_seconds,
            )
            save_index(
                index,
                store.segment_path(name),
                sidecar_path=store.sidecar_path(name),
            )
        merged = SegmentInfo(
            name=name,
            trajectory_count=archive.trajectory_count,
            instance_count=archive.instance_count,
            min_trajectory_id=trajectories[0].trajectory_id,
            max_trajectory_id=trajectories[-1].trajectory_id,
            min_time=min(s.min_time for s in task.segments),
            max_time=max(s.max_time for s in task.segments),
            file_bytes=size,
            level=task.target_level,
        )
        store.replace_segments(task.names, merged)
    # sources are garbage once the swap generation is durable; a crash
    # from here on only leaves unreferenced files for recover() to sweep
    for info in task.segments:
        _unlink_quietly(store, store.segment_path(info.name))
        _unlink_quietly(store, store.sidecar_path(info.name))
    obs_metrics.counter("repro_compaction_merges_total").inc()
    obs_metrics.counter("repro_compaction_segments_merged_total").inc(
        len(task.segments)
    )
    obs_metrics.counter("repro_compaction_bytes_written_total").inc(size)
    _log.info(
        "compaction.merge",
        sources=task.names,
        merged=merged.name,
        target_level=task.target_level,
        trajectories=merged.trajectory_count,
        bytes=size,
    )
    return merged


def _unlink_quietly(store: ManifestStore, path: Path) -> None:
    try:
        store.fs.unlink(path)
    except FileNotFoundError:
        pass


# ----------------------------------------------------------------------
# retention / TTL
# ----------------------------------------------------------------------
def gc_segments(
    store: ManifestStore,
    *,
    drop_before: int | None = None,
    ttl_seconds: int | None = None,
    now: int | None = None,
    dry_run: bool = False,
) -> list[SegmentInfo]:
    """Drop whole cold segments: every segment with ``max_time`` strictly
    before the cutoff.

    The cutoff is ``drop_before``, or ``now - ttl_seconds`` with ``now``
    defaulting to the newest timestamp in the archive (the stream
    clock — wall clock would silently empty a replayed historical
    feed).  Aggregate stats shrink by each dropped segment's header
    stats, so ``LiveArchive.stats`` and the manifest stay consistent.
    Returns the dropped segments (``dry_run`` only reports them).
    """
    if (drop_before is None) == (ttl_seconds is None):
        raise StreamArchiveError(
            "specify exactly one of drop_before / ttl_seconds"
        )
    with store.lock:
        segments = store.segments()
        if drop_before is not None:
            cutoff = drop_before
        else:
            if now is None:
                if not segments:
                    return []
                now = max(s.max_time for s in segments)
            cutoff = now - ttl_seconds
        doomed = [s for s in segments if s.max_time < cutoff]
        if not doomed or dry_run:
            return doomed
        dropped_stats = None
        for info in doomed:
            with open(store.segment_path(info.name), "rb") as stream:
                header = read_header(stream)
            if dropped_stats is None:
                dropped_stats = header.stats
            else:
                dropped_stats.add(header.stats)
        store.drop_segments(
            [s.name for s in doomed], dropped_stats=dropped_stats
        )
    for info in doomed:
        _unlink_quietly(store, store.segment_path(info.name))
        _unlink_quietly(store, store.sidecar_path(info.name))
    obs_metrics.counter("repro_gc_segments_dropped_total").inc(len(doomed))
    _log.info(
        "compaction.gc",
        dropped=[s.name for s in doomed],
        cutoff=cutoff,
    )
    return doomed


# ----------------------------------------------------------------------
# the daemon
# ----------------------------------------------------------------------
@dataclass
class CompactionStats:
    """Work counters of one daemon (or one drain_compactions run)."""

    merges: int = 0
    segments_merged: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cycles: int = 0

    def note(self, task: CompactionTask, merged: SegmentInfo) -> None:
        self.merges += 1
        self.segments_merged += len(task.segments)
        self.bytes_read += sum(s.file_bytes for s in task.segments)
        self.bytes_written += merged.file_bytes


class CompactionDaemon:
    """Runs a compaction policy on a background thread.

    Pass the :class:`~repro.stream.writer.AppendableArchiveWriter`
    whose store it should share (merges then interleave safely with
    seals), or a directory for standalone operation on a quiesced
    archive.  ``network`` enables merged-segment sidecars; when a
    writer is given its network is used automatically.

    Use as a context manager, or ``start()``/``stop()``.  ``notify()``
    wakes the thread immediately (the replay harness calls it after
    every seal); otherwise it polls every ``interval`` seconds.  A
    policy exception stops the thread and re-raises from :meth:`stop`.
    """

    def __init__(
        self,
        source,
        *,
        policy: CompactionPolicy | None = None,
        network=None,
        interval: float = 0.5,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
    ) -> None:
        from .writer import AppendableArchiveWriter

        if isinstance(source, AppendableArchiveWriter):
            self.store = source.store
            if network is None:
                network = source.network
        elif isinstance(source, ManifestStore):
            self.store = source
        else:
            self.store = ManifestStore.open(source)
        self.policy = policy or SizeTieredPolicy()
        self.network = network
        self.interval = interval
        self.grid_cells_per_side = grid_cells_per_side
        self.time_partition_seconds = time_partition_seconds
        self.stats = CompactionStats()
        self._wake = threading.Event()
        self._halt = threading.Event()
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    # -- synchronous core ----------------------------------------------
    def run_once(self) -> int:
        """Apply the policy until it finds no work; returns merge count."""
        merges = 0
        while not self._halt.is_set():
            task = self.policy.plan(self.store.segments())
            if task is None:
                break
            merged = merge_segments(
                self.store,
                task,
                network=self.network,
                grid_cells_per_side=self.grid_cells_per_side,
                time_partition_seconds=self.time_partition_seconds,
            )
            self.stats.note(task, merged)
            merges += 1
        self.stats.cycles += 1
        return merges

    # -- thread lifecycle ----------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "CompactionDaemon":
        if self._thread is not None:
            raise StreamArchiveError("compaction daemon already started")
        self._thread = threading.Thread(
            target=self._loop, name="utcq-compaction", daemon=True
        )
        self._thread.start()
        _log.info(
            "compaction.daemon_started",
            policy=self.policy.describe(),
            interval=self.interval,
        )
        return self

    def notify(self) -> None:
        """Wake the daemon now (e.g. right after a segment seal)."""
        self._wake.set()

    def stop(self, *, timeout: float | None = 30.0) -> CompactionStats:
        """Stop the thread, re-raise any background failure, return stats."""
        self._halt.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        if self._error is not None:
            error, self._error = self._error, None
            _log.error("compaction.daemon_failed", error=str(error))
            raise error
        _log.info(
            "compaction.daemon_stopped",
            merges=self.stats.merges,
            cycles=self.stats.cycles,
        )
        return self.stats

    def _loop(self) -> None:
        try:
            while not self._halt.is_set():
                self.run_once()
                self._wake.wait(timeout=self.interval)
                self._wake.clear()
            # drain once more so a final notify-then-stop isn't lost
            self.run_once()
        except BaseException as error:  # surfaced by stop()
            self._error = error

    def __enter__(self) -> "CompactionDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def drain_compactions(
    directory_or_store,
    *,
    policy: CompactionPolicy | None = None,
    network=None,
    **kwargs,
) -> CompactionStats:
    """Run a policy to quiescence synchronously (the CLI's non-daemon
    mode); returns the work counters."""
    daemon = CompactionDaemon(
        directory_or_store, policy=policy, network=network, **kwargs
    )
    daemon.run_once()
    return daemon.stats


__all__ = [
    "CompactionDaemon",
    "CompactionPolicy",
    "CompactionStats",
    "CompactionTask",
    "LeveledPolicy",
    "POLICIES",
    "SizeTieredPolicy",
    "drain_compactions",
    "gc_segments",
    "make_policy",
    "merge_segments",
]
