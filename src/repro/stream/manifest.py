"""Crash-safe, versioned manifests for stream-archive directories.

A stream archive is a directory of immutable ``.utcq`` segments plus a
single ``manifest.json`` naming the segments that *exist* as far as
readers are concerned.  This module owns that file and the invariants
that make the directory a real storage engine:

* **Atomic, durable commits.**  Every manifest write goes through
  tmp-file + ``fsync`` + ``os.replace`` + directory ``fsync``, so a
  crash at any instant leaves either the old manifest or the new one,
  never a torn file.  Each commit carries a monotonically increasing
  ``generation`` number — the recovery point and the debugging
  breadcrumb.
* **Injectable filesystem.**  All durability-relevant operations
  (fsync, rename, unlink) are routed through a :class:`Filesystem`
  object so the crash-injection test suite can kill the writer at every
  boundary and assert recovery; production code uses the default
  instance and never notices.
* **Orphan recovery.**  :func:`recover` sweeps a directory on open:
  half-written ``*.tmp`` files are deleted, an unreferenced segment
  whose trajectory ids continue the manifest (the crashed
  rotation-then-manifest window) is *adopted* back into the manifest,
  and any other unreferenced segment or sidecar (e.g. a compaction
  output whose commit never landed) is deleted.  After recovery the
  directory and the manifest agree exactly.

The manifest format is version 2: version 1 (PR 2) manifests are read
transparently — ``generation`` starts at 0, every segment sits at level
0, and ``next_segment_id`` is derived from the existing names.
"""

from __future__ import annotations

import json
import os
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..core.archive import ComponentBits, CompressionParams, CompressionStats

MANIFEST_NAME = "manifest.json"
SEGMENT_DIR = "segments"
MANIFEST_FORMAT = "utcq-stream-manifest"
MANIFEST_VERSION = 2
#: versions this reader accepts (v1 = PR 2 manifests, upgraded on load)
SUPPORTED_VERSIONS = (1, 2)

SEGMENT_SUFFIX = ".utcq"
SIDECAR_SUFFIX = ".stiu"
_SEGMENT_NAME = re.compile(r"^seg-(\d{5,})\.utcq$")

_COMPONENT_FIELDS = (
    "time", "edge", "distance", "flags", "probability", "overhead",
)


class StreamArchiveError(Exception):
    """Raised when a stream-archive directory or manifest is invalid."""


# ----------------------------------------------------------------------
# filesystem indirection (crash-injection seam)
# ----------------------------------------------------------------------
class Filesystem:
    """Durability-relevant file operations behind one injectable seam.

    The default implementation is the real thing.  The crash-injection
    tests subclass it, count calls, and raise at the N-th boundary to
    simulate a process kill; everything above this class must stay
    consistent no matter where the exception lands.
    """

    def write_bytes(self, path, data: bytes) -> None:
        """Write ``data`` to ``path`` and flush it to stable storage."""
        with open(path, "wb") as stream:
            stream.write(data)
            stream.flush()
            self.fsync_fileno(stream.fileno(), str(path))

    def fsync_fileno(self, fileno: int, label: str) -> None:
        os.fsync(fileno)

    def fsync_path(self, path) -> None:
        """fsync an already-written file by path (segment rotation)."""
        fd = os.open(path, os.O_RDONLY)
        try:
            self.fsync_fileno(fd, str(path))
        finally:
            os.close(fd)

    def replace(self, source, target) -> None:
        os.replace(source, target)

    def fsync_dir(self, path) -> None:
        """fsync a directory so a rename inside it is durable."""
        fd = os.open(path, os.O_RDONLY)
        try:
            self.fsync_fileno(fd, str(path))
        finally:
            os.close(fd)

    def unlink(self, path) -> None:
        os.unlink(path)


DEFAULT_FS = Filesystem()


# ----------------------------------------------------------------------
# (de)serialization helpers
# ----------------------------------------------------------------------
def params_to_dict(params: CompressionParams) -> dict:
    return {
        "eta_distance": params.eta_distance,
        "eta_probability": params.eta_probability,
        "default_interval": params.default_interval,
        "symbol_width": params.symbol_width,
        "t0_bits": params.t0_bits,
        "pivot_count": params.pivot_count,
    }


def params_from_dict(data: dict) -> CompressionParams:
    try:
        return CompressionParams(**data)
    except TypeError as error:
        raise StreamArchiveError(f"bad params in manifest: {error}") from None


def stats_to_list(stats: CompressionStats) -> list[int]:
    return [getattr(stats.original, f) for f in _COMPONENT_FIELDS] + [
        getattr(stats.compressed, f) for f in _COMPONENT_FIELDS
    ]


def stats_from_list(values: list[int]) -> CompressionStats:
    if len(values) != 12:
        raise StreamArchiveError(
            f"manifest stats must hold 12 values, got {len(values)}"
        )
    return CompressionStats(
        original=ComponentBits(*values[:6]),
        compressed=ComponentBits(*values[6:]),
    )


def stats_subtract(total: CompressionStats, part: CompressionStats) -> None:
    """Remove ``part`` from ``total`` in place (segment drop / GC)."""
    for side in ("original", "compressed"):
        target = getattr(total, side)
        source = getattr(part, side)
        for name in _COMPONENT_FIELDS:
            setattr(target, name, getattr(target, name) - getattr(source, name))


@dataclass(frozen=True)
class SegmentInfo:
    """One sealed segment as recorded in the manifest."""

    name: str
    trajectory_count: int
    instance_count: int
    min_trajectory_id: int
    max_trajectory_id: int
    min_time: int
    max_time: int
    file_bytes: int
    level: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "trajectory_count": self.trajectory_count,
            "instance_count": self.instance_count,
            "min_trajectory_id": self.min_trajectory_id,
            "max_trajectory_id": self.max_trajectory_id,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "file_bytes": self.file_bytes,
            "level": self.level,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentInfo":
        try:
            return cls(**data)
        except TypeError as error:
            raise StreamArchiveError(
                f"bad segment entry in manifest: {error}"
            ) from None


def segment_id_of(name: str) -> int:
    match = _SEGMENT_NAME.match(name)
    if match is None:
        raise StreamArchiveError(f"not a segment name: {name!r}")
    return int(match.group(1))


def segment_name(segment_id: int) -> str:
    return f"seg-{segment_id:05d}{SEGMENT_SUFFIX}"


# ----------------------------------------------------------------------
# manifest document I/O
# ----------------------------------------------------------------------
def load_manifest(directory) -> dict:
    """Read and validate a stream-archive manifest; returns its dict.

    Version-1 documents are upgraded in memory: ``generation`` defaults
    to 0, ``next_segment_id`` to one past the highest segment name, and
    every segment entry to ``level`` 0.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        with open(path, encoding="utf-8") as stream:
            manifest = json.load(stream)
    except FileNotFoundError:
        raise StreamArchiveError(
            f"no stream archive at {directory} (missing {MANIFEST_NAME})"
        ) from None
    except json.JSONDecodeError as error:
        raise StreamArchiveError(f"corrupt manifest {path}: {error}") from None
    if manifest.get("format") != MANIFEST_FORMAT:
        raise StreamArchiveError(
            f"{path} is not a stream-archive manifest"
        )
    if manifest.get("version") not in SUPPORTED_VERSIONS:
        raise StreamArchiveError(
            f"unsupported manifest version {manifest.get('version')}"
        )
    if manifest["version"] == 1:
        manifest = dict(manifest)
        manifest["version"] = MANIFEST_VERSION
        manifest.setdefault("generation", 0)
        names = [entry["name"] for entry in manifest["segments"]]
        manifest.setdefault(
            "next_segment_id",
            max((segment_id_of(name) for name in names), default=-1) + 1,
        )
        manifest["segments"] = [
            {**entry, "level": entry.get("level", 0)}
            for entry in manifest["segments"]
        ]
    return manifest


def manifest_segments(manifest: dict) -> list[SegmentInfo]:
    return [SegmentInfo.from_dict(entry) for entry in manifest["segments"]]


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
@dataclass
class ManifestState:
    """In-memory image of one manifest generation."""

    params: CompressionParams
    provenance: dict[str, str]
    stats: CompressionStats = field(default_factory=CompressionStats)
    segments: list[SegmentInfo] = field(default_factory=list)
    generation: int = 0
    next_segment_id: int = 0


class ManifestStore:
    """Owns a directory's manifest: load, mutate under a lock, commit.

    The store is the single writer of ``manifest.json``.  Both the
    appendable writer and the compaction daemon mutate state through it
    while holding :attr:`lock`, so a seal and a merge can interleave
    safely in one process.  Every :meth:`commit` bumps the generation
    and is atomic + durable through the injectable :class:`Filesystem`.
    """

    def __init__(self, directory, state: ManifestState, *, fs: Filesystem | None = None) -> None:
        self.directory = Path(directory)
        self.segments_directory = self.directory / SEGMENT_DIR
        self.state = state
        self.fs = fs or DEFAULT_FS
        self.lock = threading.RLock()

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        directory,
        params: CompressionParams,
        provenance: dict[str, str],
        *,
        fs: Filesystem | None = None,
    ) -> "ManifestStore":
        store = cls(
            directory,
            ManifestState(params=params, provenance=dict(provenance)),
            fs=fs,
        )
        store.segments_directory.mkdir(parents=True, exist_ok=True)
        store.commit()
        return store

    @classmethod
    def open(cls, directory, *, fs: Filesystem | None = None) -> "ManifestStore":
        manifest = load_manifest(directory)
        state = ManifestState(
            params=params_from_dict(manifest["params"]),
            provenance=dict(manifest.get("provenance", {})),
            stats=stats_from_list(manifest["stats"]),
            segments=manifest_segments(manifest),
            generation=manifest["generation"],
            next_segment_id=manifest["next_segment_id"],
        )
        store = cls(directory, state, fs=fs)
        store.segments_directory.mkdir(parents=True, exist_ok=True)
        return store

    # -- paths ----------------------------------------------------------
    def segment_path(self, name: str) -> Path:
        return self.segments_directory / name

    def sidecar_path(self, name: str) -> Path:
        return self.segments_directory / (name + SIDECAR_SUFFIX)

    # -- committing -----------------------------------------------------
    def as_manifest(self) -> dict:
        state = self.state
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "generation": state.generation,
            "params": params_to_dict(state.params),
            "provenance": state.provenance,
            "stats": stats_to_list(state.stats),
            "trajectory_count": sum(
                s.trajectory_count for s in state.segments
            ),
            "instance_count": sum(s.instance_count for s in state.segments),
            "next_segment_id": state.next_segment_id,
            "segments": [s.as_dict() for s in state.segments],
        }

    def commit(self) -> int:
        """Atomically publish the current state; returns the generation."""
        with self.lock:
            self.state.generation += 1
            document = self.as_manifest()
            data = (
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")
            tmp = self.directory / (MANIFEST_NAME + ".tmp")
            self.fs.write_bytes(tmp, data)
            self.fs.replace(tmp, self.directory / MANIFEST_NAME)
            self.fs.fsync_dir(self.directory)
            return self.state.generation

    # -- mutations (call under ``lock``) --------------------------------
    def allocate_segment_name(self) -> str:
        with self.lock:
            name = segment_name(self.state.next_segment_id)
            self.state.next_segment_id += 1
            return name

    def add_segment(self, info: SegmentInfo, added_stats: CompressionStats | None = None) -> None:
        with self.lock:
            self.state.segments.append(info)
            if added_stats is not None:
                self.state.stats.add(added_stats)
            self.commit()

    def replace_segments(
        self, old_names: list[str], new_info: SegmentInfo
    ) -> None:
        """Swap a merged run for its sources in one committed step."""
        with self.lock:
            removed = set(old_names)
            kept = [s for s in self.state.segments if s.name not in removed]
            if len(kept) + len(removed) != len(self.state.segments):
                raise StreamArchiveError(
                    f"compaction out of date: {sorted(removed)} not all "
                    f"present in generation {self.state.generation}"
                )
            kept.append(new_info)
            kept.sort(key=lambda s: s.min_trajectory_id)
            self.state.segments = kept
            self.commit()

    def drop_segments(
        self, names: list[str], dropped_stats: CompressionStats | None = None
    ) -> None:
        with self.lock:
            removed = set(names)
            self.state.segments = [
                s for s in self.state.segments if s.name not in removed
            ]
            if dropped_stats is not None:
                stats_subtract(self.state.stats, dropped_stats)
            self.commit()

    # -- views ----------------------------------------------------------
    def segments(self) -> list[SegmentInfo]:
        with self.lock:
            return list(self.state.segments)

    @property
    def last_trajectory_id(self) -> int:
        with self.lock:
            if not self.state.segments:
                return -1
            return max(s.max_trajectory_id for s in self.state.segments)


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
@dataclass
class RecoveryReport:
    """What :func:`recover` found and did."""

    adopted: list[str] = field(default_factory=list)
    deleted_segments: list[str] = field(default_factory=list)
    deleted_sidecars: list[str] = field(default_factory=list)
    deleted_tmp: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.adopted
            or self.deleted_segments
            or self.deleted_sidecars
            or self.deleted_tmp
        )


def recover(store: ManifestStore) -> RecoveryReport:
    """Reconcile the directory with the manifest after a crash.

    Invariants restored (in order):

    1. no ``*.tmp`` leftovers anywhere in the archive directory;
    2. an unreferenced segment that *continues* the manifest's id space
       (strictly greater ids, matching params — the crash window between
       segment rename and manifest commit) is adopted: its entry is
       rebuilt from its own header and committed, so no sealed trip is
       ever lost;
    3. every other unreferenced ``.utcq`` file (an interrupted
       compaction output whose ids overlap referenced segments, or an
       unreadable torn file) is deleted;
    4. every ``.stiu`` sidecar without a referenced segment is deleted.

    Idempotent: running it again on the result is a no-op.
    """
    from ..io.format import ArchiveFormatError, read_header

    report = RecoveryReport()
    fs = store.fs
    with store.lock:
        for parent in (store.directory, store.segments_directory):
            if not parent.is_dir():
                continue
            for tmp in sorted(parent.glob("*.tmp")):
                fs.unlink(tmp)
                report.deleted_tmp.append(tmp.name)

        referenced = {s.name for s in store.state.segments}
        on_disk = sorted(
            p.name
            for p in store.segments_directory.glob(f"*{SEGMENT_SUFFIX}")
        )
        last_id = store.last_trajectory_id
        adopted_any = False
        for name in on_disk:
            if name in referenced:
                continue
            path = store.segment_path(name)
            header = None
            try:
                with open(path, "rb") as stream:
                    header = read_header(stream)
            except (ArchiveFormatError, OSError):
                header = None
            adoptable = (
                header is not None
                and header.directory
                and header.params == store.state.params
                and min(e.trajectory_id for e in header.directory) > last_id
            )
            if adoptable:
                entries = header.directory
                min_time = None
                max_time = None
                # the header has no time span; read the records' envelope
                # through the standard reader (CRC-verified)
                from ..io.reader import FileBackedArchive

                try:
                    with FileBackedArchive.open(path) as segment:
                        for trajectory in segment.trajectories:
                            start, end = (
                                trajectory.start_time,
                                trajectory.end_time,
                            )
                            min_time = (
                                start
                                if min_time is None
                                else min(min_time, start)
                            )
                            max_time = (
                                end if max_time is None else max(max_time, end)
                            )
                        segment_stats = segment.stats
                except (ArchiveFormatError, OSError):
                    fs.unlink(path)
                    report.deleted_segments.append(name)
                    continue
                info = SegmentInfo(
                    name=name,
                    trajectory_count=header.trajectory_count,
                    instance_count=header.instance_count,
                    min_trajectory_id=min(
                        e.trajectory_id for e in entries
                    ),
                    max_trajectory_id=max(
                        e.trajectory_id for e in entries
                    ),
                    min_time=min_time,
                    max_time=max_time,
                    file_bytes=path.stat().st_size,
                )
                self_id = segment_id_of(name)
                store.state.segments.append(info)
                store.state.segments.sort(
                    key=lambda s: s.min_trajectory_id
                )
                store.state.stats.add(segment_stats)
                store.state.next_segment_id = max(
                    store.state.next_segment_id, self_id + 1
                )
                referenced.add(name)
                last_id = max(last_id, info.max_trajectory_id)
                report.adopted.append(name)
                adopted_any = True
            else:
                fs.unlink(path)
                report.deleted_segments.append(name)

        for sidecar in sorted(
            store.segments_directory.glob(f"*{SIDECAR_SUFFIX}")
        ):
            owner = sidecar.name[: -len(SIDECAR_SUFFIX)]
            if owner not in referenced:
                fs.unlink(sidecar)
                report.deleted_sidecars.append(sidecar.name)

        if adopted_any:
            store.commit()
    return report


__all__ = [
    "DEFAULT_FS",
    "Filesystem",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ManifestState",
    "ManifestStore",
    "RecoveryReport",
    "SEGMENT_DIR",
    "SIDECAR_SUFFIX",
    "SegmentInfo",
    "StreamArchiveError",
    "load_manifest",
    "manifest_segments",
    "params_from_dict",
    "params_to_dict",
    "recover",
    "segment_id_of",
    "segment_name",
    "stats_from_list",
    "stats_subtract",
    "stats_to_list",
]
