"""repro — reproduction of "Compression of Uncertain Trajectories in Road
Networks" (Li et al., PVLDB 13(7), 2020).

The package implements the full UTCQ framework — improved TED
representation, SIAR time coding, FJD-based reference selection,
referential compression, the StIU index, and probabilistic
where/when/range queries — together with every substrate the paper
depends on: a road-network model, probabilistic map matching, dataset
generators matching the published DK/CD/HZ statistics, and the TED
baseline.

Quickstart::

    from repro import load_dataset, compress_dataset, StIUIndex, UTCQQueryProcessor

    network, trajectories = load_dataset("CD", 200)
    archive = compress_dataset(network, trajectories, default_interval=10)
    index = StIUIndex(network, archive)
    queries = UTCQQueryProcessor(network, archive, index)
    results = queries.where(trajectories[0].trajectory_id,
                            trajectories[0].times[1], alpha=0.2)

Persistence and scale-out::

    from repro import FileBackedArchive, compress_parallel

    archive, report = compress_parallel(
        network, trajectories, default_interval=10, workers=4
    )  # byte-identical to the serial archive
    archive.save("cd.utcq")
    with FileBackedArchive.open("cd.utcq") as on_disk:
        index = StIUIndex(network, on_disk)   # lazy per-trajectory loads
        queries = UTCQQueryProcessor(network, on_disk, index)

Streaming ingestion::

    from repro import TripSessionizer, AppendableArchiveWriter, LiveArchive

    sessionizer = TripSessionizer(network)
    with AppendableArchiveWriter("fleet/", network, default_interval=10) as w:
        for vehicle, fix in feed:               # any (id, RawPoint) stream
            for trip in sessionizer.observe(vehicle, fix):
                w.append(trip)                  # seals rotating segments
        for trip in sessionizer.flush():        # seal trips still active
            w.append(trip)
    live = LiveArchive("fleet/")                # queryable mid-ingestion

The same operations are exposed on the command line as
``python -m repro compress | info | decompress | query`` and
``python -m repro stream replay | compact | stats``.
"""

from .core import (
    CompressedArchive,
    CompressionParams,
    CompressionStats,
    UTCQCompressor,
    compress_dataset,
    decode_archive,
    decode_trajectory,
)
from .network import (
    GridPartition,
    Rect,
    RoadNetwork,
    dataset_network,
    grid_network,
    perturbed_grid_network,
)
from .query import (
    BatchQueryEngine,
    BruteForceOracle,
    RangeQuery,
    ShardedQueryEngine,
    StIUIndex,
    UTCQQueryProcessor,
    WhenQuery,
    WhereQuery,
)
from .io import ArchiveClosedError, FileBackedArchive, read_archive, write_archive
from .pipeline import BatchReport, compress_parallel
from .stream import (
    AppendableArchiveWriter,
    LiveArchive,
    SessionConfig,
    StreamingMapMatcher,
    TripSessionizer,
    compact,
    replay,
)
from .ted import TEDCompressor, TedArchive, TedQueryIndex
from .trajectories import (
    MappedLocation,
    TrajectoryInstance,
    UncertainTrajectory,
    load_dataset,
    profile,
)
from .mapmatching import MatcherConfig, ProbabilisticMapMatcher

# The canonical version lives in the installed distribution metadata
# (pyproject reads it from this fallback constant at build time); the
# constant keeps `repro --version` working for PYTHONPATH=src checkouts.
__version__ = "1.2.0"
try:
    from importlib.metadata import version as _distribution_version

    __version__ = _distribution_version("repro-utcq")
except Exception:  # not installed: keep the in-source fallback
    pass

__all__ = [
    "CompressedArchive",
    "CompressionParams",
    "CompressionStats",
    "UTCQCompressor",
    "compress_dataset",
    "decode_archive",
    "decode_trajectory",
    "GridPartition",
    "Rect",
    "RoadNetwork",
    "dataset_network",
    "grid_network",
    "perturbed_grid_network",
    "BatchQueryEngine",
    "BruteForceOracle",
    "RangeQuery",
    "ShardedQueryEngine",
    "StIUIndex",
    "UTCQQueryProcessor",
    "WhenQuery",
    "WhereQuery",
    "ArchiveClosedError",
    "FileBackedArchive",
    "read_archive",
    "write_archive",
    "BatchReport",
    "compress_parallel",
    "AppendableArchiveWriter",
    "LiveArchive",
    "SessionConfig",
    "StreamingMapMatcher",
    "TripSessionizer",
    "compact",
    "replay",
    "TEDCompressor",
    "TedArchive",
    "TedQueryIndex",
    "MappedLocation",
    "TrajectoryInstance",
    "UncertainTrajectory",
    "load_dataset",
    "profile",
    "MatcherConfig",
    "ProbabilisticMapMatcher",
    "__version__",
]
