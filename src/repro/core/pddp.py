"""Error-bounded binary-fraction coding of relative distances and
probabilities (the paper's PDDP component, §2.3 / §4.4).

The paper defines the code of a value ``x`` in [0, 1) as its truncated
binary expansion ``C(x) = sum_i C(x)_i * 2^-i`` with the smallest number
of bits ``I`` such that ``|C(x) - x| <= eta``.  This is the only *lossy*
component of the framework; the error bounds ``eta_D`` (distances) and
``eta_p`` (probabilities) are preset compression parameters.

Storage of the variable-length codes follows the PDDP-tree idea
(storage reduction for repeated codes) with two concrete modes, chosen
per component by measured size (DESIGN.md documents this reconstruction):

* **direct** — each value is a small fixed-width length field followed by
  the code bits (the length field width is derived from ``eta``, since
  ``I <= ceil(log2(1/eta))``);
* **dictionary** — distinct codes are stored once in a header (a
  serialized prefix tree, i.e. the code list), and each value is a
  fixed-width index into it; wins when values repeat, as relative
  distances do across instances of one uncertain trajectory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..bits import expgolomb
from ..bits.bitio import BitReader, BitWriter, uint_width


# Fraction codes are pure functions of (x, eta) and the same handful of
# relative distances / probabilities recurs across every instance of a
# dataset, so both directions are memoized.  The caches are bounded (and
# simply dropped when full) to keep long-running ingestion processes flat.
_CACHE_LIMIT = 1 << 15
_LENGTH_CACHE: dict[float, int] = {}
_ENCODE_CACHE: dict[tuple[float, float], tuple[int, ...]] = {}
_DECODE_CACHE: dict[tuple[int, ...], float] = {}


def max_code_length(eta: float) -> int:
    """The largest code length any value needs: ``ceil(log2(1/eta))``.

    Truncating a binary expansion at ``I`` bits leaves an error strictly
    below ``2^-I``, so ``2^-I <= eta`` always suffices.
    """
    cached = _LENGTH_CACHE.get(eta)
    if cached is not None:
        return cached
    if not 0.0 < eta < 1.0:
        raise ValueError(f"eta must be in (0, 1), got {eta}")
    length = max(int(math.ceil(math.log2(1.0 / eta))), 1)
    if len(_LENGTH_CACHE) >= _CACHE_LIMIT:
        _LENGTH_CACHE.clear()
    _LENGTH_CACHE[eta] = length
    return length


def encode_fraction(x: float, eta: float) -> tuple[int, ...]:
    """The truncated binary-expansion code of ``x`` (paper's ``C(rd)``).

    Returns the shortest bit tuple whose value is within ``eta`` of ``x``.
    Values are clamped into [0, 1) first; an ``x`` within ``eta`` of zero
    encodes as the empty tuple.
    """
    key = (x, eta)
    cached = _ENCODE_CACHE.get(key)
    if cached is not None:
        return cached
    limit = max_code_length(eta)
    clamped = min(max(x, 0.0), 1.0 - 2.0 ** -(limit + 1))
    bits: list[int] = []
    value = 0.0
    scale = 0.5
    if abs(value - clamped) <= eta:
        bits_tuple: tuple[int, ...] = ()
    else:
        for _ in range(limit):
            if value + scale <= clamped:
                bits.append(1)
                value += scale
            else:
                bits.append(0)
            scale /= 2
            if abs(value - clamped) <= eta:
                break
        bits_tuple = tuple(bits)
    if len(_ENCODE_CACHE) >= _CACHE_LIMIT:
        _ENCODE_CACHE.clear()
    _ENCODE_CACHE[key] = bits_tuple
    return bits_tuple


def decode_fraction(bits: tuple[int, ...] | list[int]) -> float:
    """Value of a truncated binary-expansion code."""
    key = tuple(bits)
    cached = _DECODE_CACHE.get(key)
    if cached is not None:
        return cached
    value = 0.0
    scale = 0.5
    for bit in key:
        if bit:
            value += scale
        scale /= 2
    if len(_DECODE_CACHE) >= _CACHE_LIMIT:
        _DECODE_CACHE.clear()
    _DECODE_CACHE[key] = value
    return value


@dataclass
class PddpEncoder:
    """Collects values for one component, then serializes them compactly.

    Usage: ``add`` every value during representation, then ``serialize``
    once; ``positions`` afterwards maps value index to its bit offset
    within the serialized payload (the StIU spatial index stores such
    offsets as ``d.pos``).
    """

    eta: float

    def __post_init__(self) -> None:
        self.codes: list[tuple[int, ...]] = []
        self._positions: list[int] | None = None

    def add(self, value: float) -> int:
        """Queue ``value``; returns its index."""
        self.codes.append(encode_fraction(value, self.eta))
        return len(self.codes) - 1

    def add_all(self, values: list[float]) -> None:
        for value in values:
            self.add(value)

    def _direct_size(self) -> int:
        length_bits = uint_width(max_code_length(self.eta))
        return sum(length_bits + len(code) for code in self.codes)

    def _dictionary_size(self) -> tuple[int, list[tuple[int, ...]]]:
        distinct = sorted(set(self.codes), key=lambda c: (len(c), c))
        index_bits = uint_width(max(len(distinct) - 1, 0))
        length_bits = uint_width(max_code_length(self.eta))
        header = (
            expgolomb.encoded_length(len(distinct))
            + sum(length_bits + len(code) for code in distinct)
        )
        return header + index_bits * len(self.codes), distinct

    @staticmethod
    def _code_word(code: tuple[int, ...], length_bits: int) -> tuple[int, int]:
        """One (value, width) word holding the length field and code bits."""
        value = len(code)
        for bit in code:
            value = (value << 1) | bit
        return value, length_bits + len(code)

    def serialize(self, writer: BitWriter) -> None:
        """Write mode flag, header, and all values; records positions."""
        length_bits = uint_width(max_code_length(self.eta))
        direct_size = self._direct_size()
        dict_size, distinct = self._dictionary_size()
        use_dictionary = dict_size < direct_size
        writer.write_bit(1 if use_dictionary else 0)
        expgolomb.encode_unsigned(writer, len(self.codes))
        positions: list[int] = []
        if use_dictionary:
            expgolomb.encode_unsigned(writer, len(distinct))
            for code in distinct:
                writer.append_bits(*self._code_word(code, length_bits))
            index_of = {code: i for i, code in enumerate(distinct)}
            index_bits = uint_width(max(len(distinct) - 1, 0))
            for code in self.codes:
                positions.append(len(writer))
                writer.write_uint(index_of[code], index_bits)
        else:
            words = {
                code: self._code_word(code, length_bits)
                for code in set(self.codes)
            }
            for code in self.codes:
                positions.append(len(writer))
                writer.append_bits(*words[code])
        self._positions = positions

    @property
    def positions(self) -> list[int]:
        if self._positions is None:
            raise RuntimeError("serialize() must run before positions are known")
        return self._positions

    def serialized_size(self) -> int:
        """Size in bits the cheaper mode will take (without serializing)."""
        flag_and_count = 1 + expgolomb.encoded_length(len(self.codes))
        return flag_and_count + min(self._direct_size(), self._dictionary_size()[0])


class PddpDecoder:
    """Decodes a stream produced by :class:`PddpEncoder`."""

    def __init__(self, reader: BitReader, eta: float) -> None:
        self.eta = eta
        length_bits = uint_width(max_code_length(eta))
        self.use_dictionary = reader.read_bit() == 1
        self.count = expgolomb.decode_unsigned(reader)
        self._values: list[float] = []
        if self.use_dictionary:
            distinct_count = expgolomb.decode_unsigned(reader)
            dictionary = []
            for _ in range(distinct_count):
                code_length = reader.read_uint(length_bits)
                dictionary.append(decode_fraction(reader.read_bits(code_length)))
            index_bits = uint_width(max(distinct_count - 1, 0))
            for _ in range(self.count):
                self._values.append(dictionary[reader.read_uint(index_bits)])
        else:
            for _ in range(self.count):
                code_length = reader.read_uint(length_bits)
                self._values.append(decode_fraction(reader.read_bits(code_length)))

    @property
    def values(self) -> list[float]:
        return self._values

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def __len__(self) -> int:
        return self.count


def encode_values(values: list[float], eta: float) -> BitWriter:
    """One-shot convenience: encode ``values`` into a fresh writer."""
    encoder = PddpEncoder(eta)
    encoder.add_all(values)
    writer = BitWriter()
    encoder.serialize(writer)
    return writer


def decode_values(reader: BitReader, eta: float) -> list[float]:
    """One-shot convenience matching :func:`encode_values`."""
    return PddpDecoder(reader, eta).values
