"""Improved TED representation of trajectory instances (§4.1, Table 3).

Each instance ``Tu^j_w`` becomes the tuple
``(SV, E, D, T', p)``:

* ``SV`` — the start vertex id of the first traversed edge, split out of
  the edge sequence (the paper separates ``SV(Tu)`` from ``E(Tu)`` "to
  achieve a more compact format");
* ``E`` — outgoing edge numbers along the path, where an edge carrying
  ``r > 1`` mapped locations is followed by ``r - 1`` zeros (§2.2);
* ``D`` — relative distances of the mapped locations (Definition 7);
* ``T'`` — one bit per ``E`` entry marking entries that carry a mapped
  location; the improved representation *stores* it without its first and
  last bits, which are always 1 (the first and last edges must carry a
  point);
* ``p`` — the instance probability.

``decode_instance`` reconstructs a :class:`TrajectoryInstance` from the
tuple plus the road network, which makes the whole pipeline losslessly
invertible (up to the D quantization chosen at compression time).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.graph import RoadNetwork
from ..trajectories.model import (
    EdgeKey,
    MappedLocation,
    TrajectoryInstance,
)


@dataclass(frozen=True)
class InstanceTuple:
    """The improved TED tuple of one trajectory instance."""

    start_vertex: int
    edge_numbers: tuple[int, ...]
    relative_distances: tuple[float, ...]
    time_flags: tuple[int, ...]  # full T', including first/last bits
    probability: float

    def __post_init__(self) -> None:
        if len(self.edge_numbers) != len(self.time_flags):
            raise ValueError("T' must have exactly one bit per E entry")
        if self.edge_numbers and self.edge_numbers[0] == 0:
            raise ValueError("E cannot start with a repeat marker (0)")
        ones = sum(self.time_flags)
        if ones != len(self.relative_distances):
            raise ValueError(
                f"T' marks {ones} locations but D has "
                f"{len(self.relative_distances)} entries"
            )
        if self.time_flags and (self.time_flags[0] != 1 or self.time_flags[-1] != 1):
            raise ValueError("first and last T' bits must be 1")

    @property
    def trimmed_time_flags(self) -> tuple[int, ...]:
        """T' as stored: without the (always-1) first and last bits."""
        return self.time_flags[1:-1]

    @property
    def point_count(self) -> int:
        return len(self.relative_distances)

    @property
    def edge_sequence_length(self) -> int:
        return len(self.edge_numbers)


def restore_time_flags(trimmed: tuple[int, ...] | list[int]) -> tuple[int, ...]:
    """Re-attach the omitted first and last 1-bits to a stored T'."""
    return (1, *trimmed, 1)


def encode_instance(
    network: RoadNetwork, instance: TrajectoryInstance
) -> InstanceTuple:
    """Derive the improved TED tuple of ``instance``."""
    counts = instance.points_per_edge()
    edge_numbers: list[int] = []
    time_flags: list[int] = []
    for path_index, edge in enumerate(instance.path):
        edge_numbers.append(network.out_number(*edge))
        count = counts[path_index]
        if count >= 1:
            time_flags.append(1)
            if count > 1:
                edge_numbers.extend([0] * (count - 1))
                time_flags.extend([1] * (count - 1))
        else:
            time_flags.append(0)
    return InstanceTuple(
        start_vertex=instance.start_vertex,
        edge_numbers=tuple(edge_numbers),
        relative_distances=tuple(instance.relative_distances(network)),
        time_flags=tuple(time_flags),
        probability=instance.probability,
    )


def decode_instance(
    network: RoadNetwork, encoded: InstanceTuple
) -> TrajectoryInstance:
    """Reconstruct a :class:`TrajectoryInstance` from its tuple."""
    path: list[EdgeKey] = []
    locations: list[MappedLocation] = []
    edge_indices: list[int] = []
    current_vertex = encoded.start_vertex
    distance_cursor = 0
    for number, flag in zip(encoded.edge_numbers, encoded.time_flags):
        if number > 0:
            edge = network.edge_by_number(current_vertex, number)
            path.append(edge.key)
            current_vertex = edge.end
        elif not path:
            raise ValueError("E starts with a repeat marker")
        if flag == 1:
            edge_key = path[-1]
            rd = encoded.relative_distances[distance_cursor]
            distance_cursor += 1
            ndist = rd * network.edge_length(*edge_key)
            # lossy distance codes may invert two same-edge locations by
            # less than eta * length; clamping keeps the model's order
            # invariant without leaving the error bound
            if (
                edge_indices
                and edge_indices[-1] == len(path) - 1
                and ndist < locations[-1].ndist
            ):
                ndist = locations[-1].ndist
            locations.append(MappedLocation(edge_key, ndist))
            edge_indices.append(len(path) - 1)
    if distance_cursor != len(encoded.relative_distances):
        raise ValueError("D has more entries than T' marks")
    return TrajectoryInstance(
        path=path,
        locations=locations,
        probability=encoded.probability,
        location_edge_indices=edge_indices,
    )


def path_vertices(network: RoadNetwork, encoded: InstanceTuple) -> list[int]:
    """The vertex sequence visited by the encoded path, starting at SV.

    Used by the StIU spatial index, whose tuples store vertex ids (final
    vertices and factor anchor vertices) alongside positions in ``E``.
    """
    vertices = [encoded.start_vertex]
    current = encoded.start_vertex
    for number in encoded.edge_numbers:
        if number > 0:
            edge = network.edge_by_number(current, number)
            current = edge.end
            vertices.append(current)
    return vertices


def edge_prefix(
    network: RoadNetwork, encoded: InstanceTuple, entry_count: int
) -> list[EdgeKey]:
    """Decode only the first ``entry_count`` entries of ``E`` into edges.

    Partial decompression helper: where/when queries rarely need the whole
    path, only the stretch bracketing a timestamp or location.
    """
    edges: list[EdgeKey] = []
    current = encoded.start_vertex
    for number in encoded.edge_numbers[:entry_count]:
        if number > 0:
            edge = network.edge_by_number(current, number)
            edges.append(edge.key)
            current = edge.end
    return edges
