"""Pivot selection and (S, L) pivot representation (§4.3).

Reference selection needs pairwise similarities between all instances of
an uncertain trajectory, but computing exact similarities is too slow.
Following FRESCO [35], every instance's edge sequence is referentially
represented against a small set of *pivots*, and similarity is estimated
from those representations (the Fine-grained Jaccard Distance,
:mod:`repro.core.fjd`).

Pivot representation uses the pure-match ``(S, L)`` format of [10]: at
each position the longest match against the pivot becomes a factor.  When
the current symbol does not occur in the pivot, the paper "omits the
factor but increases the number of factors by 1" — represented here as a
``None`` entry so the count ``H`` stays faithful.

Pivot selection (§4.3): start from a random instance, and iteratively
promote the instance whose representation against the latest pivot has
the most factors (the farthest instance), re-representing everything
against each new pivot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

PivotFactor = tuple[int, int]  # (S, L); None entries mark omitted factors


def pivot_factors(
    target: Sequence[int], pivot: Sequence[int]
) -> list[PivotFactor | None]:
    """(S, L) factorization of ``target`` against ``pivot``.

    Edge numbers are tiny (bounded by the max out-degree), so both
    sequences almost always fit in ``bytes`` and the longest match runs
    through C-level ``bytes.find``; the pure-Python scan remains as the
    fallback for out-of-range symbols.  Both paths pick the smallest
    start achieving the maximal match length, so outputs are identical.
    """
    try:
        target_bytes, pivot_bytes = bytes(target), bytes(pivot)
    except (ValueError, TypeError):
        pass
    else:
        factors: list[PivotFactor | None] = []
        find = pivot_bytes.find
        i = 0
        n = len(target_bytes)
        while i < n:
            start = find(target_bytes[i : i + 1])
            if start < 0:
                factors.append(None)
                i += 1
                continue
            length = 1
            while i + length < n:
                found = find(target_bytes[i : i + length + 1])
                if found < 0:
                    break
                start = found
                length += 1
            factors.append((start, length))
            i += length
        return factors

    occurrences: dict[int, list[int]] = {}
    for position, symbol in enumerate(pivot):
        occurrences.setdefault(symbol, []).append(position)
    factors: list[PivotFactor | None] = []
    i = 0
    n = len(target)
    m = len(pivot)
    while i < n:
        best_start, best_length = 0, 0
        for start in occurrences.get(target[i], ()):
            # a candidate can only beat best_length if it also matches at
            # offset best_length (matches are contiguous from offset 0)
            if best_length and (
                i + best_length >= n
                or start + best_length >= m
                or target[i + best_length] != pivot[start + best_length]
            ):
                continue
            length = 0
            while (
                i + length < n
                and start + length < m
                and target[i + length] == pivot[start + length]
            ):
                length += 1
            if length > best_length:
                best_start, best_length = start, length
        if best_length == 0:
            factors.append(None)
            i += 1
        else:
            factors.append((best_start, best_length))
            i += best_length
    return factors


def factor_count(factors: Sequence[PivotFactor | None]) -> int:
    """The paper's ``H``: number of factors including omitted ones."""
    return len(factors)


@dataclass
class PivotRepresentations:
    """All instances of one uncertain trajectory represented against each
    selected pivot.

    ``representations[pivot_index][instance_index]`` is the (S, L) factor
    list of that instance against that pivot; ``pivot_indices`` identifies
    which instances serve as pivots.
    """

    pivot_indices: list[int]
    representations: list[list[list[PivotFactor | None]]]

    @property
    def pivot_count(self) -> int:
        return len(self.pivot_indices)


def select_pivots(
    edge_sequences: Sequence[Sequence[int]],
    pivot_count: int,
    rng: random.Random,
) -> PivotRepresentations:
    """Select pivots and build all pivot representations (§4.3 steps i-iv).

    ``edge_sequences`` are the ``E`` sequences of the instances of one
    uncertain trajectory.  At most ``min(pivot_count, N)`` distinct pivots
    are selected.
    """
    if pivot_count < 1:
        raise ValueError(f"pivot_count must be >= 1, got {pivot_count}")
    n = len(edge_sequences)
    if n == 0:
        raise ValueError("cannot select pivots from zero instances")

    # step i: a random starting instance; represent everything against it
    seed_index = rng.randrange(n)
    seed_factors = [
        pivot_factors(sequence, edge_sequences[seed_index])
        for sequence in edge_sequences
    ]

    pivot_indices: list[int] = []
    representations: list[list[list[PivotFactor | None]]] = []
    latest_factors = seed_factors
    while len(pivot_indices) < min(pivot_count, n):
        # step ii: the farthest instance (most factors) becomes a pivot
        candidates = [
            (factor_count(latest_factors[i]), i)
            for i in range(n)
            if i not in pivot_indices
        ]
        if not candidates:
            break
        _, chosen = max(candidates, key=lambda item: (item[0], -item[1]))
        pivot_indices.append(chosen)
        # step iii: re-represent all instances against the new pivot
        latest_factors = [
            pivot_factors(sequence, edge_sequences[chosen])
            for sequence in edge_sequences
        ]
        representations.append(latest_factors)
    return PivotRepresentations(pivot_indices, representations)
