"""Compressed-archive container and size accounting.

An archive holds, per uncertain trajectory, one compressed time stream
(shared by all instances) and one compressed payload per instance
(reference or non-reference).  Payloads are real bit streams — every
reported size is the length of serialized bits, not an estimate.

Size accounting follows the paper's Table 8 breakdown: ``T`` (time),
``E`` (edge sequences incl. start vertices), ``D`` (relative distances),
``T'`` (time-flag bit-strings), and ``p`` (probabilities), plus an
``overhead`` bucket for structural fields the paper does not attribute
(instance counts, reference flags and indices).  Original sizes use the
paper's conventions: 32-bit timestamps, vertex ids, edge-sequence
entries, distances, and probabilities; T' costs one bit per flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ComponentBits:
    """Bit counts per TED component."""

    time: int = 0
    edge: int = 0
    distance: int = 0
    flags: int = 0
    probability: int = 0
    overhead: int = 0

    @property
    def total(self) -> int:
        return (
            self.time
            + self.edge
            + self.distance
            + self.flags
            + self.probability
            + self.overhead
        )

    def add(self, other: "ComponentBits") -> None:
        self.time += other.time
        self.edge += other.edge
        self.distance += other.distance
        self.flags += other.flags
        self.probability += other.probability
        self.overhead += other.overhead


@dataclass
class CompressionStats:
    """Original vs compressed bit counts with per-component ratios."""

    original: ComponentBits = field(default_factory=ComponentBits)
    compressed: ComponentBits = field(default_factory=ComponentBits)

    def add(self, other: "CompressionStats") -> None:
        self.original.add(other.original)
        self.compressed.add(other.compressed)

    @staticmethod
    def _ratio(original: int, compressed: int) -> float:
        if compressed == 0:
            return float("inf") if original > 0 else 1.0
        return original / compressed

    @property
    def total_ratio(self) -> float:
        return self._ratio(self.original.total, self.compressed.total)

    @property
    def time_ratio(self) -> float:
        return self._ratio(self.original.time, self.compressed.time)

    @property
    def edge_ratio(self) -> float:
        return self._ratio(self.original.edge, self.compressed.edge)

    @property
    def distance_ratio(self) -> float:
        return self._ratio(self.original.distance, self.compressed.distance)

    @property
    def flags_ratio(self) -> float:
        return self._ratio(self.original.flags, self.compressed.flags)

    @property
    def probability_ratio(self) -> float:
        return self._ratio(self.original.probability, self.compressed.probability)

    def as_row(self) -> dict[str, float]:
        """Table 8-style row: Total / T / E / D / T' / p ratios."""
        return {
            "Total": self.total_ratio,
            "T": self.time_ratio,
            "E": self.edge_ratio,
            "D": self.distance_ratio,
            "T'": self.flags_ratio,
            "p": self.probability_ratio,
        }


@dataclass(frozen=True)
class CompressionParams:
    """Archive-wide compression parameters.

    ``eta_distance`` / ``eta_probability`` are the PDDP error bounds
    (Table 7); ``default_interval`` is the dataset's ``Ts``;
    ``symbol_width`` is ``ceil(log2(o+1))`` bits for edge numbers (and
    the 0 repeat marker); ``t0_bits`` sizes the SIAR first-timestamp
    field; ``pivot_count`` is the reference-selection pivot budget.
    """

    eta_distance: float
    eta_probability: float
    default_interval: int
    symbol_width: int
    t0_bits: int = 17
    pivot_count: int = 1


@dataclass
class CompressedInstance:
    """One serialized instance payload plus decode/index metadata.

    ``payload``/``payload_bits`` are the real bit stream.  For references
    the stream is ``|E|, E, T'(trimmed), D(PDDP), p``; for non-references
    it is ``ref_index, ComE, ComT', ComD, p``.  Offsets mark section
    starts (bits) for partial decompression; ``distance_positions`` and
    ``factor_positions`` feed the StIU spatial tuples (``d.pos`` /
    ``ma.pos``).
    """

    is_reference: bool
    payload: bytes
    payload_bits: int
    start_vertex: int | None  # references only (32-bit accounted)
    reference_ordinal: int  # position among the trajectory's references
    edge_offset: int
    flags_offset: int
    distance_offset: int
    probability_offset: int
    distance_positions: tuple[int, ...]
    factor_positions: tuple[int, ...]
    probability: float  # decoded value, cached for index construction


@dataclass
class CompressedTrajectory:
    """One compressed uncertain trajectory."""

    trajectory_id: int
    time_payload: bytes
    time_payload_bits: int
    point_count: int
    start_time: int
    end_time: int
    deviation_positions: tuple[int, ...]
    instances: list[CompressedInstance]
    stats: CompressionStats

    @property
    def reference_count(self) -> int:
        return sum(1 for i in self.instances if i.is_reference)

    def references(self) -> list[CompressedInstance]:
        return [i for i in self.instances if i.is_reference]

    def reference_by_ordinal(self, ordinal: int) -> CompressedInstance:
        for instance in self.instances:
            if instance.is_reference and instance.reference_ordinal == ordinal:
                return instance
        raise KeyError(f"no reference with ordinal {ordinal}")


@dataclass
class CompressedArchive:
    """A compressed collection of uncertain trajectories."""

    params: CompressionParams
    trajectories: list[CompressedTrajectory]
    stats: CompressionStats = field(default_factory=CompressionStats)

    def __post_init__(self) -> None:
        if not self.stats.original.total:
            for trajectory in self.trajectories:
                self.stats.add(trajectory.stats)

    @property
    def trajectory_count(self) -> int:
        return len(self.trajectories)

    @property
    def instance_count(self) -> int:
        return sum(len(t.instances) for t in self.trajectories)

    @property
    def compressed_bytes(self) -> int:
        return (self.stats.compressed.total + 7) // 8

    @property
    def original_bytes(self) -> int:
        return (self.stats.original.total + 7) // 8

    def trajectory(self, trajectory_id: int) -> CompressedTrajectory:
        id_map = self.__dict__.get("_id_map")
        if id_map is None or len(id_map) != len(self.trajectories):
            id_map = {t.trajectory_id: t for t in self.trajectories}
            self.__dict__["_id_map"] = id_map
        try:
            return id_map[trajectory_id]
        except KeyError:
            raise KeyError(
                f"no trajectory {trajectory_id} in the archive"
            ) from None

    def save(self, path, *, provenance: dict[str, str] | None = None) -> int:
        """Serialize to the ``.utcq`` on-disk format; returns file size.

        See :mod:`repro.io.format` for the layout.  The round trip is
        bit-exact: ``CompressedArchive.load(path)`` restores payloads,
        offsets, and stats identical to this archive.
        """
        from ..io.format import write_archive

        return write_archive(self, path, provenance=provenance)

    @classmethod
    def load(cls, path) -> "CompressedArchive":
        """Eagerly read an archive written by :meth:`save`."""
        from ..io.format import read_archive

        return read_archive(path)

    @staticmethod
    def open(path, **kwargs):
        """Open an archive file lazily (per-trajectory loading).

        Returns a :class:`repro.io.reader.FileBackedArchive`, which the
        StIU index and query processor accept in place of an in-memory
        archive.
        """
        from ..io.reader import FileBackedArchive

        return FileBackedArchive.open(path, **kwargs)
