"""Binary encoding of references and non-references (§4.4).

The encoder turns improved-TED instance tuples plus a reference selection
into the bit-level payloads held by :class:`~repro.core.archive.
CompressedTrajectory`.  References are stored directly (fixed-width edge
numbers, raw trimmed T', PDDP distances); non-references store factor
streams against their reference.  All component sizes are measured from
the actual bit positions, so the Table 8 accounting is exact.
"""

from __future__ import annotations

from ..bits import expgolomb
from ..bits.bitio import BitWriter, uint_width
from . import siar
from .archive import (
    ComponentBits,
    CompressedInstance,
    CompressedTrajectory,
    CompressionParams,
    CompressionStats,
)
from .factors import (
    distance_patches,
    factorize_edges,
    write_distance_patches,
    write_edge_factors,
    write_flag_stream,
)
from .improved_ted import InstanceTuple
from .pddp import (
    PddpEncoder,
    decode_fraction,
    encode_fraction,
    max_code_length,
)
from .refselect import ReferenceSelection

START_VERTEX_BITS = 32  # paper convention: vertex ids are 32-bit


def _write_probability(
    writer: BitWriter, probability: float, eta: float
) -> tuple[int, float]:
    """Write one probability as a direct PDDP fraction code.

    Returns ``(bits_written, decoded_value)``.
    """
    before = len(writer)
    code = encode_fraction(probability, eta)
    writer.write_uint(len(code), uint_width(max_code_length(eta)))
    writer.write_bits(code)
    return len(writer) - before, decode_fraction(code)


def encode_reference(
    encoded: InstanceTuple,
    ordinal: int,
    params: CompressionParams,
) -> tuple[CompressedInstance, ComponentBits]:
    """Serialize one reference instance."""
    writer = BitWriter()
    bits = ComponentBits()

    edge_offset = len(writer)
    expgolomb.encode_unsigned(writer, len(encoded.edge_numbers))
    if encoded.edge_numbers:
        # fixed-width row, packed into one accumulator push; every
        # out_number fits params.symbol_width by construction
        symbol_width = params.symbol_width
        row = 0
        for number in encoded.edge_numbers:
            row = (row << symbol_width) | number
        writer.append_bits(row, symbol_width * len(encoded.edge_numbers))
    flags_offset = len(writer)
    bits.edge = flags_offset - edge_offset + START_VERTEX_BITS

    writer.write_bits(encoded.trimmed_time_flags)
    distance_offset = len(writer)
    bits.flags = distance_offset - flags_offset

    pddp = PddpEncoder(params.eta_distance)
    pddp.add_all(list(encoded.relative_distances))
    pddp.serialize(writer)
    probability_offset = len(writer)
    bits.distance = probability_offset - distance_offset
    distance_positions = tuple(pddp.positions)

    probability_bits, decoded_probability = _write_probability(
        writer, encoded.probability, params.eta_probability
    )
    bits.probability = probability_bits

    instance = CompressedInstance(
        is_reference=True,
        payload=writer.getvalue(),
        payload_bits=len(writer),
        start_vertex=encoded.start_vertex,
        reference_ordinal=ordinal,
        edge_offset=edge_offset,
        flags_offset=flags_offset,
        distance_offset=distance_offset,
        probability_offset=probability_offset,
        distance_positions=distance_positions,
        factor_positions=(),
        probability=decoded_probability,
    )
    return instance, bits


def encode_non_reference(
    encoded: InstanceTuple,
    reference: InstanceTuple,
    reference_decoded_distances: list[float],
    reference_ordinal: int,
    reference_count: int,
    params: CompressionParams,
) -> tuple[CompressedInstance, ComponentBits]:
    """Serialize one non-reference against its (already encoded) reference."""
    writer = BitWriter()
    bits = ComponentBits()

    ref_index_width = uint_width(max(reference_count - 1, 0))
    writer.write_uint(reference_ordinal, ref_index_width)
    bits.overhead = len(writer)

    edge_offset = len(writer)
    factors = factorize_edges(encoded.edge_numbers, reference.edge_numbers)
    factor_positions: list[int] = []
    write_edge_factors(
        writer,
        factors,
        len(reference.edge_numbers),
        params.symbol_width,
        positions=factor_positions,
    )
    flags_offset = len(writer)
    bits.edge = flags_offset - edge_offset

    write_flag_stream(
        writer, encoded.trimmed_time_flags, reference.trimmed_time_flags
    )
    distance_offset = len(writer)
    bits.flags = distance_offset - flags_offset

    patches = distance_patches(
        list(encoded.relative_distances),
        reference_decoded_distances,
        params.eta_distance,
    )
    write_distance_patches(
        writer, patches, len(reference.relative_distances), params.eta_distance
    )
    probability_offset = len(writer)
    bits.distance = probability_offset - distance_offset

    probability_bits, decoded_probability = _write_probability(
        writer, encoded.probability, params.eta_probability
    )
    bits.probability = probability_bits

    instance = CompressedInstance(
        is_reference=False,
        payload=writer.getvalue(),
        payload_bits=len(writer),
        start_vertex=None,
        reference_ordinal=reference_ordinal,
        edge_offset=edge_offset,
        flags_offset=flags_offset,
        distance_offset=distance_offset,
        probability_offset=probability_offset,
        distance_positions=(),
        factor_positions=tuple(factor_positions),
        probability=decoded_probability,
    )
    return instance, bits


def original_instance_bits(encoded: InstanceTuple) -> ComponentBits:
    """Uncompressed size of one instance under the paper's conventions."""
    return ComponentBits(
        edge=32 * (len(encoded.edge_numbers) + 1),  # entries + start vertex
        distance=32 * len(encoded.relative_distances),
        flags=len(encoded.time_flags),
        probability=32,
    )


def encode_trajectory(
    trajectory_id: int,
    tuples: list[InstanceTuple],
    selection: ReferenceSelection,
    times: list[int],
    params: CompressionParams,
) -> CompressedTrajectory:
    """Assemble one compressed uncertain trajectory.

    ``tuples`` are the improved-TED tuples of all instances (original
    order); ``selection`` is Algorithm 1's output over the same indices.
    """
    stats = CompressionStats()

    time_writer = BitWriter()
    _, positions = siar.encode_with_positions(
        time_writer, times, params.default_interval, t0_bits=params.t0_bits
    )
    deviation_positions = tuple(positions)
    stats.compressed.time = len(time_writer)
    stats.original.time = 32 * len(times)

    ordinal_of = {
        instance_index: ordinal
        for ordinal, instance_index in enumerate(selection.references)
    }
    reference_count = len(selection.references)

    encoded_references: dict[int, tuple[CompressedInstance, list[float]]] = {}
    for instance_index in selection.references:
        instance, bits = encode_reference(
            tuples[instance_index], ordinal_of[instance_index], params
        )
        decoded_distances = [
            decode_fraction(
                encode_fraction(rd, params.eta_distance)
            )
            for rd in tuples[instance_index].relative_distances
        ]
        encoded_references[instance_index] = (instance, decoded_distances)
        stats.compressed.add(bits)

    instances: list[CompressedInstance] = [None] * len(tuples)  # type: ignore[list-item]
    for instance_index in selection.references:
        instances[instance_index] = encoded_references[instance_index][0]
    for reference_index, members in selection.assignments.items():
        _, reference_decoded = encoded_references[reference_index]
        for member in members:
            instance, bits = encode_non_reference(
                tuples[member],
                tuples[reference_index],
                reference_decoded,
                ordinal_of[reference_index],
                reference_count,
                params,
            )
            instances[member] = instance
            stats.compressed.add(bits)

    for encoded in tuples:
        stats.original.add(original_instance_bits(encoded))

    # structural overhead: instance count + one reference flag per instance
    stats.compressed.overhead += expgolomb.encoded_length(len(tuples)) + len(tuples)

    return CompressedTrajectory(
        trajectory_id=trajectory_id,
        time_payload=time_writer.getvalue(),
        time_payload_bits=len(time_writer),
        point_count=len(times),
        start_time=times[0],
        end_time=times[-1],
        deviation_positions=deviation_positions,
        instances=instances,
        stats=stats,
    )
