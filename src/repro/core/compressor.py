"""The UTCQ compressor: the paper's full pipeline (Fig. 3) end to end.

For each uncertain trajectory the compressor

1. converts instances to improved-TED tuples (§4.1),
2. selects pivots and builds pivot representations of ``E`` (§4.3),
3. scores instance pairs with FJD and runs Algorithm 1 to choose
   references and their referential representation sets,
4. serializes references directly and non-references as factor streams
   (§4.2, §4.4), with SIAR + improved Exp-Golomb for the shared time
   sequence.

The output :class:`~repro.core.archive.CompressedArchive` carries exact
per-component sizes for the Table 8 accounting and all offsets the StIU
index needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..bits.bitio import uint_width
from ..network.graph import RoadNetwork
from ..trajectories.model import UncertainTrajectory
from .archive import CompressedArchive, CompressedTrajectory, CompressionParams
from .encoder import encode_trajectory
from .fjd import score_matrix
from .improved_ted import encode_instance
from .pivots import select_pivots
from .refselect import ReferenceSelection, select_references

DEFAULT_ETA_DISTANCE = 1 / 128  # Table 7 default
DEFAULT_ETA_PROBABILITY = 1 / 512  # Table 7 default (1/2048 for HZ)


@dataclass
class UTCQCompressor:
    """Compresses uncertain trajectories over a fixed road network.

    Parameters mirror Table 7: the PDDP error bounds, the number of
    pivots for reference selection, and the dataset's default sample
    interval.  ``seed`` drives the randomized pivot seeding and makes
    compression deterministic.
    """

    network: RoadNetwork
    default_interval: int
    eta_distance: float = DEFAULT_ETA_DISTANCE
    eta_probability: float = DEFAULT_ETA_PROBABILITY
    pivot_count: int = 1
    seed: int = 17
    #: ablation switch: store every instance standalone (no references)
    disable_referential: bool = False

    def __post_init__(self) -> None:
        if self.pivot_count < 1:
            raise ValueError(f"pivot_count must be >= 1, got {self.pivot_count}")
        if self.default_interval < 1:
            raise ValueError(
                f"default_interval must be >= 1, got {self.default_interval}"
            )

    def trajectory_rng(self, trajectory_id: int) -> random.Random:
        """Deterministic RNG for one trajectory, independent of order.

        Seeding per trajectory (rather than threading one stream through
        the whole dataset) makes compression embarrassingly parallel: any
        sharding of the dataset across workers produces bit-identical
        payloads (see :mod:`repro.pipeline.batch`).  The mix is plain
        integer arithmetic so it is stable across processes and platforms.
        """
        return random.Random(
            (self.seed * 0x9E3779B97F4A7C15 + trajectory_id) & (2**64 - 1)
        )

    def params_for(
        self, trajectories: list[UncertainTrajectory]
    ) -> CompressionParams:
        """Archive-wide parameters derived from network and data."""
        max_t0 = max((t.start_time for t in trajectories), default=0)
        return CompressionParams(
            eta_distance=self.eta_distance,
            eta_probability=self.eta_probability,
            default_interval=self.default_interval,
            symbol_width=uint_width(self.network.max_out_degree),
            t0_bits=max(17, uint_width(max_t0)),
            pivot_count=self.pivot_count,
        )

    def select_for(
        self, trajectory: UncertainTrajectory, rng: random.Random
    ) -> ReferenceSelection:
        """Pivot selection + FJD scoring + Algorithm 1 for one trajectory."""
        tuples = [
            encode_instance(self.network, instance)
            for instance in trajectory.instances
        ]
        if len(tuples) == 1:
            selection = ReferenceSelection(references=[0], assignments={0: []})
            return selection
        pivots = select_pivots(
            [t.edge_numbers for t in tuples], self.pivot_count, rng
        )
        matrix = score_matrix(
            [t.probability for t in tuples],
            [t.start_vertex for t in tuples],
            pivots,
        )
        return select_references(matrix)

    def compress_trajectory(
        self,
        trajectory: UncertainTrajectory,
        params: CompressionParams,
        rng: random.Random,
    ) -> CompressedTrajectory:
        """Compress a single uncertain trajectory."""
        tuples = [
            encode_instance(self.network, instance)
            for instance in trajectory.instances
        ]
        if len(tuples) == 1 or self.disable_referential:
            selection = ReferenceSelection(
                references=list(range(len(tuples))),
                assignments={i: [] for i in range(len(tuples))},
            )
        else:
            pivots = select_pivots(
                [t.edge_numbers for t in tuples], self.pivot_count, rng
            )
            matrix = score_matrix(
                [t.probability for t in tuples],
                [t.start_vertex for t in tuples],
                pivots,
            )
            selection = select_references(matrix)
        return encode_trajectory(
            trajectory.trajectory_id,
            tuples,
            selection,
            list(trajectory.times),
            params,
        )

    def compress(
        self, trajectories: list[UncertainTrajectory]
    ) -> CompressedArchive:
        """Compress a whole dataset, one trajectory at a time.

        Processing trajectory-by-trajectory is the source of UTCQ's small
        memory footprint compared to TED's dataset-wide matrices (Fig. 6's
        memory annotations).  Each trajectory gets its own RNG stream via
        :meth:`trajectory_rng`, so the result is byte-identical to what
        :func:`repro.pipeline.compress_parallel` produces for any worker
        count.
        """
        params = self.params_for(trajectories)
        compressed = [
            self.compress_trajectory(
                trajectory, params, self.trajectory_rng(trajectory.trajectory_id)
            )
            for trajectory in trajectories
        ]
        return CompressedArchive(params=params, trajectories=compressed)


def compress_dataset(
    network: RoadNetwork,
    trajectories: list[UncertainTrajectory],
    *,
    default_interval: int,
    eta_distance: float = DEFAULT_ETA_DISTANCE,
    eta_probability: float = DEFAULT_ETA_PROBABILITY,
    pivot_count: int = 1,
    seed: int = 17,
) -> CompressedArchive:
    """Functional convenience wrapper around :class:`UTCQCompressor`."""
    compressor = UTCQCompressor(
        network=network,
        default_interval=default_interval,
        eta_distance=eta_distance,
        eta_probability=eta_probability,
        pivot_count=pivot_count,
        seed=seed,
    )
    return compressor.compress(trajectories)
