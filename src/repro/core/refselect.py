"""Greedy reference selection (Algorithm 1 of the paper).

Given the score matrix ``SM[w][v] = SF(Tu_w, Tu_v)``, repeatedly pick the
highest-scoring pair, make ``w`` a reference and assign ``v`` to its
referential representation set, then enforce the two constraints by
deleting entries:

* each non-reference has exactly one reference (delete column ``v`` and —
  single-order compression — row ``v``);
* references are never themselves represented (delete column ``w``).

When only zero scores remain, instances that are neither references nor
non-references are "formally added to the reference set ... but are not
associated with a reference representation set" (Algorithm 1 lines
11-13), i.e. they are stored standalone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ReferenceSelection:
    """The outcome of Algorithm 1 for one uncertain trajectory.

    ``references`` lists instance indices in selection order (standalone
    leftovers last); ``assignments`` maps each reference index to the
    instance indices it represents (its ``Rrs``, possibly empty).
    """

    references: list[int] = field(default_factory=list)
    assignments: dict[int, list[int]] = field(default_factory=dict)

    @property
    def non_references(self) -> list[int]:
        return [v for members in self.assignments.values() for v in members]

    def reference_of(self, instance_index: int) -> int | None:
        """The reference representing ``instance_index`` (or itself)."""
        if instance_index in self.assignments:
            return instance_index
        for reference, members in self.assignments.items():
            if instance_index in members:
                return reference
        return None

    def validate(self, instance_count: int) -> None:
        """Check the Algorithm 1 invariants (used in tests)."""
        covered = set(self.references) | set(self.non_references)
        if covered != set(range(instance_count)):
            raise AssertionError(
                f"selection covers {sorted(covered)}, expected all of "
                f"0..{instance_count - 1}"
            )
        if len(self.references) + len(self.non_references) != instance_count:
            raise AssertionError("an instance is both reference and non-reference")


def select_references(matrix: Sequence[Sequence[float]]) -> ReferenceSelection:
    """Run Algorithm 1 on a score matrix.

    ``matrix[w][v]`` scores representing instance ``v`` by instance ``w``;
    diagonals must be zero (an instance never represents itself).
    """
    n = len(matrix)
    for row in matrix:
        if len(row) != n:
            raise ValueError("score matrix must be square")
    alive = [[True] * n for _ in range(n)]
    selection = ReferenceSelection()
    is_reference = [False] * n
    is_non_reference = [False] * n

    # Pre-sort all positive entries once (the paper notes pre-sorting as
    # the efficiency improvement over repeated max scans).
    order = sorted(
        (
            (matrix[w][v], w, v)
            for w in range(n)
            for v in range(n)
            if w != v and matrix[w][v] > 0.0
        ),
        key=lambda item: (-item[0], item[1], item[2]),
    )

    for value, w, v in order:
        if not alive[w][v]:
            continue
        if value <= 0.0:
            break
        if not is_reference[w]:
            is_reference[w] = True
            selection.references.append(w)
            selection.assignments[w] = []
            for v2 in range(n):
                alive[v2][w] = False  # w can no longer be represented
        selection.assignments[w].append(v)
        is_non_reference[v] = True
        for w2 in range(n):
            alive[w2][v] = False  # v already has its reference
            alive[v][w2] = False  # v cannot be a reference (single order)

    # Lines 11-13: leftovers become standalone references.
    for w in range(n):
        if not is_reference[w] and not is_non_reference[w]:
            selection.references.append(w)
            selection.assignments[w] = []
    return selection
