"""Fine-grained Jaccard Distance and the reference score function
(Equations 1-3 of the paper).

The plain Jaccard distance over factor sets is too coarse: two nearly
identical instances can share *no* identical factor.  FJD instead scores
each factor of the candidate against the other instance's factor list by
positional overlap:

    sim(f_v, Com_w) = max_h overlap(f_w[h], f_v) / max(L^w_max, L_v)

where ``overlap`` intersects the ``[S, S+L)`` intervals and ``L^w_max``
is the length of the overlap-maximizing factor of ``w`` (minimum on
ties).  Then

    FJD(w -> v, piv) = sum_{h'} sim(f_v[h'], Com_w) / max(H_w, H_v)

and the selection score multiplies by the would-be reference's
probability:

    SF(w, v) = w.p * max_i FJD(w -> v, piv_i)

with ``SF(w, w) = 0`` and ``SF(w, v) = 0`` when the instances start at
different vertices (different ``SV`` never share a reference).
"""

from __future__ import annotations

from typing import Sequence

from .pivots import PivotFactor, PivotRepresentations


def overlap(a: PivotFactor, b: PivotFactor) -> int:
    """Interval intersection of two (S, L) factors (paper's definition:
    ``max(min(S1+L1, S2+L2) - max(S1, S2), 0)``)."""
    return max(min(a[0] + a[1], b[0] + b[1]) - max(a[0], b[0]), 0)


def similarity(
    factor: PivotFactor | None,
    against: Sequence[PivotFactor | None],
) -> float:
    """Equation 2: ``sim`` of one factor of ``v`` against ``Com_w``.

    Omitted (``None``) factors on either side contribute zero overlap.
    The interval intersection is inlined: this runs once per factor pair
    of every instance pair of every trajectory.
    """
    if factor is None:
        return 0.0
    f_start, f_length = factor
    f_end = f_start + f_length
    best_overlap = 0
    best_length: int | None = None
    for other in against:
        if other is None:
            continue
        o_start, o_length = other
        lo = f_start if f_start > o_start else o_start
        o_end = o_start + o_length
        hi = f_end if f_end < o_end else o_end
        amount = hi - lo
        if amount > best_overlap:
            best_overlap = amount
            best_length = o_length
        elif amount == best_overlap and amount > 0:
            if best_length is None or o_length < best_length:
                best_length = o_length  # ties take the minimum length
    if best_overlap == 0:
        return 0.0
    assert best_length is not None
    return best_overlap / (best_length if best_length > f_length else f_length)


def fine_grained_jaccard(
    com_w: Sequence[PivotFactor | None],
    com_v: Sequence[PivotFactor | None],
) -> float:
    """Equation 1: FJD from instance ``w`` to instance ``v`` against one
    pivot, given both instances' pivot representations."""
    h_w, h_v = len(com_w), len(com_v)
    if h_v == 0 or h_w == 0:
        return 0.0
    total = 0.0
    for factor in com_v:
        total += similarity(factor, com_w)
    return total / (h_w if h_w > h_v else h_v)


def score(
    w: int,
    v: int,
    probabilities: Sequence[float],
    start_vertices: Sequence[int],
    pivots: PivotRepresentations,
) -> float:
    """Equation 3's objective: ``SF(Tu_w, Tu_v)``."""
    if w == v:
        return 0.0
    if start_vertices[w] != start_vertices[v]:
        return 0.0
    best = max(
        fine_grained_jaccard(
            representation[w], representation[v]
        )
        for representation in pivots.representations
    )
    return probabilities[w] * best


def score_matrix(
    probabilities: Sequence[float],
    start_vertices: Sequence[int],
    pivots: PivotRepresentations,
) -> list[list[float]]:
    """The full ``SM`` matrix: ``SM[w][v] = SF(Tu_w, Tu_v)``."""
    n = len(probabilities)
    if len(start_vertices) != n:
        raise ValueError("probabilities and start vertices must align")
    matrix = [[0.0] * n for _ in range(n)]
    # SF is zero across different start vertices, so only instances
    # sharing an SV ever need their FJD computed.
    groups: dict[int, list[int]] = {}
    for index, start_vertex in enumerate(start_vertices):
        groups.setdefault(start_vertex, []).append(index)
    representations = pivots.representations
    for members in groups.values():
        if len(members) < 2:
            continue
        for w in members:
            row = matrix[w]
            probability = probabilities[w]
            for v in members:
                if w == v:
                    continue
                best = max(
                    fine_grained_jaccard(
                        representation[w], representation[v]
                    )
                    for representation in representations
                )
                row[v] = probability * best
    return matrix
