"""Referential representation factors (§4.2, Definition 8, Table 4).

A non-reference instance is expressed against its reference as a list of
*factors*.  Three streams use three factor grammars, each validated
against the paper's worked examples:

* **E (edge sequences)** — the (S, L, M) grammar of FRESCO [35]:
  ``S``/``L`` locate a subsequence of the reference, ``M`` is the first
  mismatching symbol after it.  Two rewrites (paper §4.2): a trailing
  factor with no mismatch is ``(S, L)``; a symbol absent from the
  reference is ``(S=|E(Ref)|, M)`` with ``L`` omitted.
* **T' (time-flag bit-strings)** — factors are ``(S, L)`` with the
  mismatch bit *inferred* as ``NOT ref[S+L]``; only the final factor keeps
  an explicit ``M`` when one exists.  A raw-bits fallback mode covers the
  (rare) bit-strings the inferred grammar cannot express, and is also
  chosen when it is smaller.
* **D (relative distances)** — positional patches ``(pos, rd)`` at the
  indices where the non-reference's distances differ from the
  reference's; applicable because all instances of one uncertain
  trajectory have the same number of mapped locations.

Bit widths follow §4.4: for E, ``S`` takes ``ceil(log2(|E(Ref)|+1))``
bits, ``L`` ``ceil(log2(|E(Ref)|))`` (stored as ``L-1``), ``M`` the
edge-number width; for T', ``S``/``L`` take ``ceil(log2(|T'(Ref)|))``
bits and ``M`` one bit; for D, ``pos`` takes ``ceil(log2(|D(Ref)|))``
bits and ``rd`` a PDDP fraction code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..bits import expgolomb
from ..bits.bitio import BitReader, BitWriter, uint_width
from .pddp import decode_fraction, encode_fraction, max_code_length


@dataclass(frozen=True)
class EdgeFactor:
    """One factor of an E stream.

    ``length is None`` marks the out-of-reference form ``(S, M)`` (where
    ``start == |reference|``); ``mismatch is None`` marks the trailing
    pure-match form ``(S, L)``.
    """

    start: int
    length: int | None
    mismatch: int | None

    def __post_init__(self) -> None:
        if self.length is None and self.mismatch is None:
            raise ValueError("a factor needs a match, a mismatch, or both")

    @property
    def consumed(self) -> int:
        """Symbols of the target this factor reproduces."""
        return (self.length or 0) + (1 if self.mismatch is not None else 0)


@dataclass(frozen=True)
class FlagFactor:
    """One factor of a T' stream: a match, with mismatch bit either
    inferred from the reference (``mismatch is None`` on non-final
    factors) or explicit (final factor)."""

    start: int
    length: int
    mismatch: int | None = None


# ----------------------------------------------------------------------
# longest-match machinery
# ----------------------------------------------------------------------
def _occurrences(reference: Sequence[int]) -> dict[int, list[int]]:
    table: dict[int, list[int]] = {}
    for position, symbol in enumerate(reference):
        table.setdefault(symbol, []).append(position)
    return table


def _longest_match(
    target: Sequence[int],
    position: int,
    reference: Sequence[int],
    occurrences: dict[int, list[int]],
) -> tuple[int, int]:
    """Longest match of ``target[position:]`` inside ``reference``.

    Returns ``(start, length)``; ties break toward the smallest start,
    matching the paper's worked factorizations.  ``length`` 0 means the
    current symbol does not occur in the reference at all.
    """
    best_start, best_length = 0, 0
    n, m = len(target), len(reference)
    for start in occurrences.get(target[position], ()):
        # only a candidate that also matches at offset best_length can
        # beat the incumbent (matches are contiguous from offset 0)
        if best_length and (
            position + best_length >= n
            or start + best_length >= m
            or target[position + best_length] != reference[start + best_length]
        ):
            continue
        length = 0
        while (
            position + length < n
            and start + length < m
            and target[position + length] == reference[start + length]
        ):
            length += 1
        if length > best_length:
            best_start, best_length = start, length
    return best_start, best_length


# ----------------------------------------------------------------------
# E factors
# ----------------------------------------------------------------------
def factorize_edges(
    target: Sequence[int], reference: Sequence[int]
) -> list[EdgeFactor]:
    """Greedy (S, L, M) factorization of ``target`` against ``reference``.

    Edge numbers fit in ``bytes`` for every realistic out-degree, so the
    longest match runs through C-level ``bytes.find`` (smallest start on
    ties, exactly like the pure-Python fallback below).
    """
    try:
        target_bytes, reference_bytes = bytes(target), bytes(reference)
    except (ValueError, TypeError):
        pass
    else:
        factors: list[EdgeFactor] = []
        find = reference_bytes.find
        i = 0
        n = len(target_bytes)
        reference_length = len(reference_bytes)
        while i < n:
            start = find(target_bytes[i : i + 1])
            if start < 0:
                factors.append(EdgeFactor(reference_length, None, target[i]))
                i += 1
                continue
            length = 1
            while i + length < n:
                found = find(target_bytes[i : i + length + 1])
                if found < 0:
                    break
                start = found
                length += 1
            if i + length == n:
                factors.append(EdgeFactor(start, length, None))
                i += length
            else:
                factors.append(EdgeFactor(start, length, target[i + length]))
                i += length + 1
        return factors

    occurrences = _occurrences(reference)
    factors: list[EdgeFactor] = []
    i = 0
    n = len(target)
    while i < n:
        start, length = _longest_match(target, i, reference, occurrences)
        if length == 0:
            factors.append(EdgeFactor(len(reference), None, target[i]))
            i += 1
        elif i + length == n:
            factors.append(EdgeFactor(start, length, None))
            i += length
        else:
            factors.append(EdgeFactor(start, length, target[i + length]))
            i += length + 1
    return factors


def apply_edge_factors(
    factors: Sequence[EdgeFactor], reference: Sequence[int]
) -> list[int]:
    """Reconstruct the target sequence from its factors and reference."""
    output: list[int] = []
    for factor in factors:
        if factor.length is not None:
            if factor.start + factor.length > len(reference):
                raise ValueError(
                    f"factor {factor} exceeds the reference length"
                )
            output.extend(reference[factor.start : factor.start + factor.length])
        if factor.mismatch is not None:
            output.append(factor.mismatch)
    return output


def write_edge_factors(
    writer: BitWriter,
    factors: Sequence[EdgeFactor],
    reference_length: int,
    symbol_width: int,
    *,
    positions: list[int] | None = None,
) -> None:
    """Serialize an E factor stream (§4.4 widths).

    When ``positions`` is given, each factor's absolute bit offset in
    ``writer`` is appended to it in the same pass (the StIU spatial index
    stores these as factor anchors).
    """
    s_width = uint_width(reference_length)
    l_width = uint_width(max(reference_length - 1, 0))
    expgolomb.encode_unsigned(writer, len(factors))
    if not factors:
        return
    last = factors[-1]
    writer.write_bit(1 if last.mismatch is not None else 0)
    for factor in factors:
        if positions is not None:
            positions.append(len(writer))
        writer.write_uint(factor.start, s_width)
        if factor.start == reference_length:
            if factor.length is not None or factor.mismatch is None:
                raise ValueError(f"out-of-reference factor malformed: {factor}")
            writer.write_uint(factor.mismatch, symbol_width)
            continue
        if factor.length is None:
            raise ValueError(f"in-reference factor without length: {factor}")
        writer.write_uint(factor.length - 1, l_width)
        if factor.mismatch is not None:
            writer.write_uint(factor.mismatch, symbol_width)


def read_edge_factors(
    reader: BitReader, reference_length: int, symbol_width: int
) -> list[EdgeFactor]:
    """Inverse of :func:`write_edge_factors`."""
    s_width = uint_width(reference_length)
    l_width = uint_width(max(reference_length - 1, 0))
    count = expgolomb.decode_unsigned(reader)
    if count == 0:
        return []
    last_has_mismatch = reader.read_bit() == 1
    factors: list[EdgeFactor] = []
    for index in range(count):
        start = reader.read_uint(s_width)
        if start == reference_length:
            factors.append(EdgeFactor(start, None, reader.read_uint(symbol_width)))
            continue
        length = reader.read_uint(l_width) + 1
        is_last = index == count - 1
        if is_last and not last_has_mismatch:
            factors.append(EdgeFactor(start, length, None))
        else:
            factors.append(
                EdgeFactor(start, length, reader.read_uint(symbol_width))
            )
    return factors


# ----------------------------------------------------------------------
# T' factors
# ----------------------------------------------------------------------
def factorize_flags(
    target: Sequence[int], reference: Sequence[int]
) -> list[FlagFactor] | None:
    """Greedy inferred-mismatch factorization of a bit-string.

    Returns ``None`` when the grammar cannot express ``target`` against
    ``reference`` (callers fall back to raw bits).  An exact copy of the
    reference yields the empty list (the paper's ``Com = emptyset``).
    """
    if list(target) == list(reference):
        return []
    if not target:
        # an empty factor list means "copy the reference"; an empty target
        # that differs from the reference needs the raw fallback
        return None
    occurrences = _occurrences(reference)
    factors: list[FlagFactor] = []
    i = 0
    n = len(target)
    m = len(reference)
    while i < n:
        # candidate maximal matches at every viable start
        best_final: tuple[int, int] | None = None  # match reaching target end
        best_mid: tuple[int, int] | None = None  # match with inferable M
        for start in occurrences.get(target[i], ()):
            length = 0
            while (
                i + length < n
                and start + length < m
                and target[i + length] == reference[start + length]
            ):
                length += 1
            if length == 0:
                continue
            if i + length == n:
                if best_final is None or length > best_final[1]:
                    best_final = (start, length)
            if start + length < m and i + length < n:
                if best_mid is None or length > best_mid[1]:
                    best_mid = (start, length)
        if best_final is not None:
            factors.append(FlagFactor(best_final[0], best_final[1], None))
            return factors
        if best_mid is None:
            return None
        start, length = best_mid
        if i + length + 1 == n:
            # the mismatch is the final target bit: keep it explicit (§4.2)
            factors.append(
                FlagFactor(start, length, target[i + length])
            )
            return factors
        factors.append(FlagFactor(start, length, None))
        i += length + 1
    return factors


def apply_flag_factors(
    factors: Sequence[FlagFactor], reference: Sequence[int]
) -> list[int]:
    """Reconstruct a T' bit-string from its factors and reference."""
    if not factors:
        return list(reference)
    output: list[int] = []
    for index, factor in enumerate(factors):
        end = factor.start + factor.length
        if end > len(reference):
            raise ValueError(f"factor {factor} exceeds the reference length")
        output.extend(reference[factor.start : end])
        if factor.mismatch is not None:
            output.append(factor.mismatch)
        elif index < len(factors) - 1:
            if end >= len(reference):
                raise ValueError(
                    f"non-final factor {factor} has no inferable mismatch"
                )
            output.append(1 - reference[end])
    return output


def write_flag_stream(
    writer: BitWriter,
    target: Sequence[int],
    reference: Sequence[int],
) -> None:
    """Serialize T' referentially, falling back to raw bits when needed.

    Layout: mode bit (0 factored / 1 raw).  Factored: factor count
    (Exp-Golomb), has-final-M bit, then per factor ``S`` and ``L-1`` in
    ``ceil(log2(|T'(Ref)|))`` bits, the final factor's ``M`` in 1 bit when
    present.  Raw: the target bits verbatim — no length field, because
    the decoder reads T' *after* decoding the edge sequence and therefore
    already knows ``|T'| = |E| - 2``.
    """
    factors = factorize_flags(target, reference)
    width = uint_width(max(len(reference) - 1, 0))
    factored_cost = None
    if factors is not None:
        factored_cost = expgolomb.encoded_length(len(factors))
        if factors:
            factored_cost += 1  # has-M flag
            factored_cost += sum(2 * width for _ in factors)
            if factors[-1].mismatch is not None:
                factored_cost += 1
    raw_cost = len(target)
    if factored_cost is not None and factored_cost <= raw_cost:
        writer.write_bit(0)
        expgolomb.encode_unsigned(writer, len(factors))
        if factors:
            writer.write_bit(1 if factors[-1].mismatch is not None else 0)
            for factor in factors:
                writer.write_uint(factor.start, width)
                writer.write_uint(factor.length - 1, width)
            if factors[-1].mismatch is not None:
                writer.write_bit(factors[-1].mismatch)
    else:
        writer.write_bit(1)
        writer.write_bits(target)


def read_flag_stream(
    reader: BitReader,
    reference: Sequence[int],
    target_length: int,
) -> list[int]:
    """Inverse of :func:`write_flag_stream`: returns the target bits.

    ``target_length`` is ``|E(target)| - 2``, known from the already
    decoded edge sequence.
    """
    raw_mode = reader.read_bit() == 1
    if raw_mode:
        return reader.read_bits(target_length)
    width = uint_width(max(len(reference) - 1, 0))
    count = expgolomb.decode_unsigned(reader)
    if count == 0:
        return list(reference)
    has_final_m = reader.read_bit() == 1
    pairs = [
        (reader.read_uint(width), reader.read_uint(width) + 1)
        for _ in range(count)
    ]
    final_m = reader.read_bit() if has_final_m else None
    factors = [
        FlagFactor(start, length, None) for start, length in pairs[:-1]
    ]
    factors.append(FlagFactor(pairs[-1][0], pairs[-1][1], final_m))
    return apply_flag_factors(factors, reference)


def read_flag_stream_factors(
    reader: BitReader, reference_length: int, target_length: int
) -> tuple[list[FlagFactor] | None, list[int] | None]:
    """Read a flag stream without applying it.

    Returns ``(factors, None)`` in factored mode or ``(None, raw_bits)``
    in raw mode — the form the partial-decompression arrays (§5.1) work
    on directly.
    """
    raw_mode = reader.read_bit() == 1
    if raw_mode:
        return None, reader.read_bits(target_length)
    width = uint_width(max(reference_length - 1, 0))
    count = expgolomb.decode_unsigned(reader)
    if count == 0:
        return [], None
    has_final_m = reader.read_bit() == 1
    pairs = [
        (reader.read_uint(width), reader.read_uint(width) + 1)
        for _ in range(count)
    ]
    final_m = reader.read_bit() if has_final_m else None
    factors = [FlagFactor(start, length, None) for start, length in pairs[:-1]]
    factors.append(FlagFactor(pairs[-1][0], pairs[-1][1], final_m))
    return factors, None


# ----------------------------------------------------------------------
# D factors
# ----------------------------------------------------------------------
def distance_patches(
    target: Sequence[float],
    reference_decoded: Sequence[float],
    eta: float,
) -> list[tuple[int, float]]:
    """Positions where the reference's *decoded* distances are not an
    ``eta``-accurate stand-in for the target's, with replacement values.

    Comparing against the decoded reference keeps the end-to-end error of
    every non-reference distance within ``eta`` even though the reference
    itself was stored lossily.
    """
    if len(target) != len(reference_decoded):
        raise ValueError(
            "instances of one uncertain trajectory must have equally many "
            f"distances (got {len(target)} vs {len(reference_decoded)})"
        )
    patches: list[tuple[int, float]] = []
    for index, (value, proxy) in enumerate(zip(target, reference_decoded)):
        if abs(value - proxy) > eta:
            patches.append((index, value))
    return patches


def write_distance_patches(
    writer: BitWriter,
    patches: Sequence[tuple[int, float]],
    reference_length: int,
    eta: float,
) -> None:
    """Serialize (pos, rd) patches; rd uses direct PDDP fraction codes."""
    pos_width = uint_width(max(reference_length - 1, 0))
    length_width = uint_width(max_code_length(eta))
    expgolomb.encode_unsigned(writer, len(patches))
    for position, value in patches:
        writer.write_uint(position, pos_width)
        code = encode_fraction(value, eta)
        writer.write_uint(len(code), length_width)
        writer.write_bits(code)


def read_distance_patches(
    reader: BitReader, reference_length: int, eta: float
) -> list[tuple[int, float]]:
    """Inverse of :func:`write_distance_patches`."""
    pos_width = uint_width(max(reference_length - 1, 0))
    length_width = uint_width(max_code_length(eta))
    count = expgolomb.decode_unsigned(reader)
    patches: list[tuple[int, float]] = []
    for _ in range(count):
        position = reader.read_uint(pos_width)
        code_length = reader.read_uint(length_width)
        patches.append(
            (position, decode_fraction(reader.read_bits(code_length)))
        )
    return patches


def apply_distance_patches(
    reference_decoded: Sequence[float],
    patches: Sequence[tuple[int, float]],
) -> list[float]:
    """Reference distances with patches applied."""
    output = list(reference_decoded)
    for position, value in patches:
        output[position] = value
    return output
