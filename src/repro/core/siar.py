"""Sample Interval Adaptive Representation of time sequences (§4.1).

TED stores a time sequence as ``(index, timestamp)`` boundary pairs and
degrades badly when sample intervals fluctuate (the common case; Fig. 4a).
SIAR instead keeps the first timestamp and, for each later timestamp, the
deviation of its interval from the dataset's default interval ``Ts``:

    T(Tu) = < t0, (t1-t0)-Ts, (t2-t1)-Ts, ... >

The deviations concentrate near zero, which the improved Exp-Golomb codec
(:mod:`repro.bits.expgolomb`) exploits.  ``t0`` is stored as a fixed-width
seconds-in-day field (17 bits by default, exactly the paper's running
example); day-crossing sequences use the ``t0_bits`` override.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bits import expgolomb
from ..bits.bitio import BitReader, BitWriter

DEFAULT_T0_BITS = 17  # enough for 86400 seconds-in-day


@dataclass(frozen=True)
class SiarSequence:
    """A time sequence in SIAR form."""

    t0: int
    deviations: tuple[int, ...]
    default_interval: int

    @property
    def length(self) -> int:
        return len(self.deviations) + 1


def represent(times: list[int], default_interval: int) -> SiarSequence:
    """Convert absolute timestamps to SIAR form."""
    if not times:
        raise ValueError("cannot represent an empty time sequence")
    if default_interval < 1:
        raise ValueError(f"default interval must be >= 1, got {default_interval}")
    if any(b <= a for a, b in zip(times, times[1:])):
        raise ValueError("timestamps must strictly increase")
    deviations = tuple(
        (b - a) - default_interval for a, b in zip(times, times[1:])
    )
    return SiarSequence(times[0], deviations, default_interval)


def restore(sequence: SiarSequence) -> list[int]:
    """Convert SIAR form back to absolute timestamps."""
    times = [sequence.t0]
    for deviation in sequence.deviations:
        times.append(times[-1] + sequence.default_interval + deviation)
    return times


def encode(
    writer: BitWriter,
    times: list[int],
    default_interval: int,
    *,
    t0_bits: int = DEFAULT_T0_BITS,
) -> SiarSequence:
    """Serialize ``times`` (SIAR + improved Exp-Golomb) onto ``writer``.

    Layout: ``t0`` (fixed ``t0_bits``), point count (Exp-Golomb), then one
    Exp-Golomb code per deviation.
    """
    sequence = represent(times, default_interval)
    if sequence.t0 >= (1 << t0_bits):
        raise ValueError(
            f"t0 {sequence.t0} does not fit in {t0_bits} bits; "
            "raise t0_bits or rebase timestamps"
        )
    writer.write_uint(sequence.t0, t0_bits)
    expgolomb.encode_unsigned(writer, len(times))
    for deviation in sequence.deviations:
        expgolomb.encode(writer, deviation)
    return sequence


def encode_with_positions(
    writer: BitWriter,
    times: list[int],
    default_interval: int,
    *,
    t0_bits: int = DEFAULT_T0_BITS,
) -> tuple[SiarSequence, list[int]]:
    """:func:`encode` that also returns each deviation's bit offset.

    Produces exactly the :func:`encode` stream while recording
    :func:`deviation_bit_positions` from the writer cursor in the same
    pass, so the compressor does not represent the sequence twice.
    ``writer`` must be empty (positions are absolute stream offsets).
    """
    if len(writer):
        raise ValueError("encode_with_positions expects an empty writer")
    sequence = represent(times, default_interval)
    if sequence.t0 >= (1 << t0_bits):
        raise ValueError(
            f"t0 {sequence.t0} does not fit in {t0_bits} bits; "
            "raise t0_bits or rebase timestamps"
        )
    writer.write_uint(sequence.t0, t0_bits)
    expgolomb.encode_unsigned(writer, len(times))
    positions: list[int] = []
    for deviation in sequence.deviations:
        positions.append(len(writer))
        expgolomb.encode(writer, deviation)
    return sequence, positions


def decode(
    reader: BitReader,
    default_interval: int,
    *,
    t0_bits: int = DEFAULT_T0_BITS,
) -> list[int]:
    """Inverse of :func:`encode`."""
    t0 = reader.read_uint(t0_bits)
    count = expgolomb.decode_unsigned(reader)
    deviations = tuple(expgolomb.decode(reader) for _ in range(count - 1))
    return restore(SiarSequence(t0, deviations, default_interval))


def decode_prefix(
    reader: BitReader,
    default_interval: int,
    *,
    t0_bits: int = DEFAULT_T0_BITS,
    stop_after: int,
) -> list[int]:
    """Decode only the first ``stop_after`` timestamps.

    Partial decompression for the temporal StIU index: a where query knows
    from the index roughly where its timestamp falls and decodes only a
    prefix of the time stream.
    """
    t0 = reader.read_uint(t0_bits)
    count = expgolomb.decode_unsigned(reader)
    take = min(max(stop_after, 1), count)
    times = [t0]
    for _ in range(take - 1):
        deviation = expgolomb.decode(reader)
        times.append(times[-1] + default_interval + deviation)
    return times


def decode_from_offset(
    reader: BitReader,
    *,
    start_time: int,
    start_index: int,
    bit_position: int,
    total_count: int,
    default_interval: int,
    stop_after: int | None = None,
) -> list[int]:
    """Resume decoding mid-stream from an StIU temporal tuple.

    The tuple supplies the absolute ``start_time`` of timestamp number
    ``start_index`` and the ``bit_position`` of the *next* deviation code;
    decoding proceeds from there, yielding timestamps ``start_index..``.
    """
    reader.seek(bit_position)
    remaining = total_count - start_index - 1
    if stop_after is not None:
        remaining = min(remaining, stop_after)
    times = [start_time]
    for _ in range(max(remaining, 0)):
        deviation = expgolomb.decode(reader)
        times.append(times[-1] + default_interval + deviation)
    return times


def encoded_size_bits(
    times: list[int],
    default_interval: int,
    *,
    t0_bits: int = DEFAULT_T0_BITS,
) -> int:
    """Exact serialized size of :func:`encode` without materializing it."""
    sequence = represent(times, default_interval)
    return (
        t0_bits
        + expgolomb.encoded_length(len(times))
        + sum(expgolomb.encoded_length(d) for d in sequence.deviations)
    )


def deviation_bit_positions(
    times: list[int],
    default_interval: int,
    *,
    t0_bits: int = DEFAULT_T0_BITS,
) -> list[int]:
    """Bit offset (within the encoded stream) of each deviation code.

    ``positions[i]`` is where the code for deviation ``i`` (between
    timestamps ``i`` and ``i+1``) begins.  The StIU temporal index stores
    these so queries can resume decoding mid-stream.
    """
    sequence = represent(times, default_interval)
    positions: list[int] = []
    offset = t0_bits + expgolomb.encoded_length(len(times))
    for deviation in sequence.deviations:
        positions.append(offset)
        offset += expgolomb.encoded_length(deviation)
    return positions
