"""Decompression: full archives, single instances, and partial streams.

The query processor (§5) never calls ``decode_archive`` — it uses the
partial entry points (time prefixes, single references, factor streams)
together with the StIU index.  Full decoding exists for round-trip
verification and for consumers who want the data back.

:class:`DecodeSpanCache` sits between the query layer and these entry
points: a bounded LRU of decoded spans (time sequences, reference
tuples, materialized instances, chainage tables) keyed by trajectory or
instance, so repeated probes of a hot trajectory cost O(span) instead
of a full re-decode.  One cache can be shared by several query
processors over the same archive + network (e.g. through a
:class:`~repro.stream.live.LiveArchive` while ingestion continues).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable

from ..config import env_int
from ..bits import expgolomb
from ..bits.bitio import BitReader, uint_width
from ..obs import metrics as obs_metrics
from ..network.graph import RoadNetwork
from ..trajectories.model import TrajectoryInstance, UncertainTrajectory
from . import siar
from .archive import (
    CompressedArchive,
    CompressedInstance,
    CompressedTrajectory,
    CompressionParams,
)
from .factors import (
    apply_distance_patches,
    apply_edge_factors,
    read_distance_patches,
    read_edge_factors,
    read_flag_stream,
)
from .improved_ted import InstanceTuple, decode_instance, restore_time_flags
from .pddp import PddpDecoder, decode_fraction, max_code_length


def _read_probability(reader: BitReader, eta: float) -> float:
    code_length = reader.read_uint(uint_width(max_code_length(eta)))
    return decode_fraction(reader.read_bits(code_length))


def decode_times(
    trajectory: CompressedTrajectory, params: CompressionParams
) -> list[int]:
    """Decode the full shared time sequence of a trajectory."""
    reader = BitReader(trajectory.time_payload, trajectory.time_payload_bits)
    return siar.decode(
        reader, params.default_interval, t0_bits=params.t0_bits
    )


def decode_times_prefix(
    trajectory: CompressedTrajectory,
    params: CompressionParams,
    stop_after: int,
) -> list[int]:
    """Decode only the first ``stop_after`` timestamps (partial)."""
    reader = BitReader(trajectory.time_payload, trajectory.time_payload_bits)
    return siar.decode_prefix(
        reader,
        params.default_interval,
        t0_bits=params.t0_bits,
        stop_after=stop_after,
    )


def decode_reference_tuple(
    instance: CompressedInstance, params: CompressionParams
) -> InstanceTuple:
    """Decode a reference payload back into an improved-TED tuple."""
    if not instance.is_reference:
        raise ValueError("decode_reference_tuple expects a reference")
    reader = BitReader(instance.payload, instance.payload_bits)
    entry_count = expgolomb.decode_unsigned(reader)
    edge_numbers = tuple(
        reader.read_uint(params.symbol_width) for _ in range(entry_count)
    )
    trimmed = reader.read_bits(max(entry_count - 2, 0))
    flags = restore_time_flags(trimmed)
    distances = tuple(PddpDecoder(reader, params.eta_distance).values)
    probability = _read_probability(reader, params.eta_probability)
    return InstanceTuple(
        start_vertex=instance.start_vertex,
        edge_numbers=edge_numbers,
        relative_distances=distances,
        time_flags=flags,
        probability=probability,
    )


def decode_non_reference_tuple(
    instance: CompressedInstance,
    reference: InstanceTuple,
    params: CompressionParams,
) -> InstanceTuple:
    """Decode a non-reference payload against its decoded reference."""
    if instance.is_reference:
        raise ValueError("decode_non_reference_tuple expects a non-reference")
    reader = BitReader(instance.payload, instance.payload_bits)
    reader.seek(instance.edge_offset)  # skip the reference index
    factors = read_edge_factors(
        reader, len(reference.edge_numbers), params.symbol_width
    )
    edge_numbers = tuple(apply_edge_factors(factors, reference.edge_numbers))
    trimmed = read_flag_stream(
        reader,
        list(reference.trimmed_time_flags),
        max(len(edge_numbers) - 2, 0),
    )
    flags = restore_time_flags(trimmed)
    patches = read_distance_patches(
        reader, len(reference.relative_distances), params.eta_distance
    )
    distances = tuple(
        apply_distance_patches(list(reference.relative_distances), patches)
    )
    probability = _read_probability(reader, params.eta_probability)
    return InstanceTuple(
        start_vertex=reference.start_vertex,
        edge_numbers=edge_numbers,
        relative_distances=distances,
        time_flags=flags,
        probability=probability,
    )


def decode_trajectory_tuples(
    trajectory: CompressedTrajectory, params: CompressionParams
) -> list[InstanceTuple]:
    """Decode every instance of one trajectory to improved-TED tuples."""
    references: dict[int, InstanceTuple] = {}
    for instance in trajectory.instances:
        if instance.is_reference:
            references[instance.reference_ordinal] = decode_reference_tuple(
                instance, params
            )
    tuples: list[InstanceTuple] = []
    for instance in trajectory.instances:
        if instance.is_reference:
            tuples.append(references[instance.reference_ordinal])
        else:
            tuples.append(
                decode_non_reference_tuple(
                    instance, references[instance.reference_ordinal], params
                )
            )
    return tuples


def decode_trajectory(
    network: RoadNetwork,
    trajectory: CompressedTrajectory,
    params: CompressionParams,
) -> UncertainTrajectory:
    """Fully decode one compressed uncertain trajectory."""
    times = decode_times(trajectory, params)
    instances: list[TrajectoryInstance] = []
    total_probability = 0.0
    for encoded in decode_trajectory_tuples(trajectory, params):
        instances.append(decode_instance(network, encoded))
        total_probability += encoded.probability
    # PDDP probability coding is lossy; renormalize so the model invariant
    # (probabilities sum to one) holds after decoding.
    if total_probability > 0:
        for instance in instances:
            instance.probability /= total_probability
    return UncertainTrajectory(
        trajectory.trajectory_id, instances, times
    )


def decode_archive(
    network: RoadNetwork, archive: CompressedArchive
) -> list[UncertainTrajectory]:
    """Fully decode an archive (verification / export path)."""
    return [
        decode_trajectory(network, trajectory, archive.params)
        for trajectory in archive.trajectories
    ]


#: "use the environment / built-in default" — distinct from None, which
#: means an explicitly unbounded section
_UNSET = object()

_DEFAULT_TRAJECTORY_CAPACITY = 1024
_DEFAULT_INSTANCE_CAPACITY = 8192


def _env_capacity(name: str, default: int) -> int:
    return env_int(name, default, minimum=0)


def resolve_trajectory_capacity(explicit=_UNSET) -> int | None:
    """Per-trajectory section capacity: explicit argument (``None`` =
    unbounded) > ``REPRO_DECODE_CACHE_TRAJECTORIES`` > 1024."""
    if explicit is not _UNSET:
        return explicit
    return _env_capacity(
        "REPRO_DECODE_CACHE_TRAJECTORIES", _DEFAULT_TRAJECTORY_CAPACITY
    )


def resolve_instance_capacity(explicit=_UNSET) -> int | None:
    """Per-instance section capacity: explicit argument (``None`` =
    unbounded) > ``REPRO_DECODE_CACHE_INSTANCES`` > 8192."""
    if explicit is not _UNSET:
        return explicit
    return _env_capacity(
        "REPRO_DECODE_CACHE_INSTANCES", _DEFAULT_INSTANCE_CAPACITY
    )


class _LruSection:
    """One bounded LRU map inside a :class:`DecodeSpanCache`.

    ``capacity`` of ``None`` means unbounded; ``0`` disables the section
    entirely (every lookup misses — the pre-cache behavior, used by the
    benchmark's legacy mode).
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int | None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class DecodeSpanCache:
    """Shared, bounded LRU of decoded trajectory spans.

    Four sections, sized independently:

    * ``times`` — full SIAR time sequences, keyed by trajectory id;
    * ``references`` — decoded reference tuples, keyed by
      ``(trajectory_id, reference_ordinal)``;
    * ``instances`` — materialized :class:`TrajectoryInstance` objects,
      keyed by ``(trajectory_id, instance_index)``;
    * ``chainages`` — cumulative-length chainage tables over those
      instances (network-dependent: share a cache only across
      processors using the same road network).

    Thread-safe: lookups take a lock around LRU mutation only; the
    decode itself (the ``factory``) runs unlocked, so concurrent misses
    on the same key may decode twice and harmlessly overwrite each
    other with equal values.
    """

    _SECTION_NAMES = ("times", "references", "instances", "chainages")

    def __init__(
        self,
        *,
        trajectory_capacity: int | None = _UNSET,
        instance_capacity: int | None = _UNSET,
        register: bool = True,
    ) -> None:
        # capacities resolve explicit > REPRO_DECODE_CACHE_* env > the
        # built-in defaults, so cache-size sweeps need no code changes
        self.trajectory_capacity = resolve_trajectory_capacity(
            trajectory_capacity
        )
        self.instance_capacity = resolve_instance_capacity(instance_capacity)
        self.times = _LruSection(self.trajectory_capacity)
        self.references = _LruSection(self.instance_capacity)
        self.instances = _LruSection(self.instance_capacity)
        self.chainages = _LruSection(self.instance_capacity)
        self._lock = threading.Lock()
        if register:
            # weak-ref collector: the registry asks this cache for its
            # counters at scrape time only, so the ~100k-lookups/s hot
            # path never touches a registry lock
            obs_metrics.get_registry().register_collector(self)

    @classmethod
    def legacy(cls) -> "DecodeSpanCache":
        """The pre-PR-5 caching behavior, for before/after benchmarks:
        references and instances memoized without bound (what the query
        processor always did), times and chainages re-decoded on every
        probe."""
        cache = cls(trajectory_capacity=None, instance_capacity=None)
        cache.times = _LruSection(0)
        cache.chainages = _LruSection(0)
        return cache

    def _lookup(self, section: _LruSection, key, factory: Callable):
        with self._lock:
            value = section.get(key)
        if value is not None:
            return value
        value = factory()
        with self._lock:
            section.put(key, value)
        return value

    def times_for(self, trajectory_id: int, factory: Callable):
        return self._lookup(self.times, trajectory_id, factory)

    def reference_for(
        self, trajectory_id: int, ordinal: int, factory: Callable
    ):
        return self._lookup(
            self.references, (trajectory_id, ordinal), factory
        )

    def instance_for(self, trajectory_id: int, index: int, factory: Callable):
        return self._lookup(self.instances, (trajectory_id, index), factory)

    def chainage_for(self, trajectory_id: int, index: int, factory: Callable):
        return self._lookup(self.chainages, (trajectory_id, index), factory)

    def clear(self) -> None:
        with self._lock:
            for section in (
                self.times, self.references, self.instances, self.chainages
            ):
                section.clear()

    def _sections(self):
        return tuple(
            (name, getattr(self, name)) for name in self._SECTION_NAMES
        )

    def stats(self) -> dict[str, dict[str, int]]:
        """A consistent hit/miss/eviction/resident snapshot per section.

        All four sections are read under the one cache lock, so the
        numbers are from a single instant even while other threads keep
        querying — no torn hits-without-their-misses reads.
        """
        with self._lock:
            return {
                name: {
                    "hits": section.hits,
                    "misses": section.misses,
                    "evictions": section.evictions,
                    "resident": len(section),
                }
                for name, section in self._sections()
            }

    def collect_metrics(self):
        """Registry-collector view of :meth:`stats` (see
        :meth:`repro.obs.metrics.MetricsRegistry.register_collector`)."""
        for name, counts in self.stats().items():
            labels = {"section": name}
            yield (
                "counter", "repro_decode_cache_hits_total", labels,
                {"value": float(counts["hits"])},
            )
            yield (
                "counter", "repro_decode_cache_misses_total", labels,
                {"value": float(counts["misses"])},
            )
            yield (
                "counter", "repro_decode_cache_evictions_total", labels,
                {"value": float(counts["evictions"])},
            )
            yield (
                "gauge", "repro_decode_cache_resident", labels,
                {"value": float(counts["resident"])},
            )


def decode_instance_by_index(
    network: RoadNetwork,
    trajectory: CompressedTrajectory,
    params: CompressionParams,
    index: int,
) -> TrajectoryInstance:
    """Decode a single instance, touching at most one reference payload.

    This is the "partial decompression" granularity queries rely on: a
    non-reference costs its own payload plus its reference's, never the
    whole trajectory.
    """
    target = trajectory.instances[index]
    if target.is_reference:
        return decode_instance(network, decode_reference_tuple(target, params))
    reference = decode_reference_tuple(
        trajectory.reference_by_ordinal(target.reference_ordinal), params
    )
    return decode_instance(
        network, decode_non_reference_tuple(target, reference, params)
    )
