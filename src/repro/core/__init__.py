"""UTCQ core: representation, reference selection, compression, decoding."""

from .archive import (
    ComponentBits,
    CompressedArchive,
    CompressedInstance,
    CompressedTrajectory,
    CompressionParams,
    CompressionStats,
)
from .compressor import (
    DEFAULT_ETA_DISTANCE,
    DEFAULT_ETA_PROBABILITY,
    UTCQCompressor,
    compress_dataset,
)
from .decoder import (
    decode_archive,
    decode_instance_by_index,
    decode_times,
    decode_times_prefix,
    decode_trajectory,
)
from .improved_ted import InstanceTuple, decode_instance, encode_instance
from .refselect import ReferenceSelection, select_references

__all__ = [
    "ComponentBits",
    "CompressedArchive",
    "CompressedInstance",
    "CompressedTrajectory",
    "CompressionParams",
    "CompressionStats",
    "DEFAULT_ETA_DISTANCE",
    "DEFAULT_ETA_PROBABILITY",
    "UTCQCompressor",
    "compress_dataset",
    "decode_archive",
    "decode_instance_by_index",
    "decode_times",
    "decode_times_prefix",
    "decode_trajectory",
    "InstanceTuple",
    "decode_instance",
    "encode_instance",
    "ReferenceSelection",
    "select_references",
]
