"""Probabilistic map matching: candidates, k-best HMM, raw-GPS synthesis."""

from .candidates import Candidate, candidates_for_point, emission_log_probability
from .hmm import MatcherConfig, ProbabilisticMapMatcher
from .noise import synthesize_raw_dataset, synthesize_raw_trajectory

__all__ = [
    "Candidate",
    "candidates_for_point",
    "emission_log_probability",
    "MatcherConfig",
    "ProbabilisticMapMatcher",
    "synthesize_raw_dataset",
    "synthesize_raw_trajectory",
]
