"""Probabilistic map matching: k-best Viterbi over an HMM (refs [2, 15]).

A raw trajectory becomes a *set* of network-constrained instances, each a
full joint assignment of candidates with a likelihood — exactly the input
Definition 5 expects.  The model is the standard map-matching HMM:

* states at step ``i``: the candidate road positions of fix ``i``;
* emissions: Gaussian in the fix-to-candidate distance;
* transitions: exponential in the discrepancy between the great-circle
  distance of consecutive fixes and the network distance between the
  candidates (routes much longer than the crow flies are unlikely).

Instead of the single best state sequence, a list-Viterbi pass keeps the
``k`` best partial sequences per state, yielding the top-``k`` complete
matchings; their likelihoods are normalized into instance probabilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..network.graph import RoadNetwork
from ..network.shortest_path import shortest_path
from ..network.spatial_index import EdgeSpatialIndex
from ..trajectories.model import (
    EdgeKey,
    MappedLocation,
    RawTrajectory,
    TrajectoryInstance,
    UncertainTrajectory,
)
from .candidates import Candidate, candidates_for_point


@dataclass
class MatcherConfig:
    """Tunables of the probabilistic matcher."""

    sigma: float = 25.0  # GPS noise scale (meters)
    beta: float = 60.0  # transition tolerance (meters of detour)
    search_radius: float = 60.0
    max_candidates: int = 4
    max_instances: int = 8
    max_route_factor: float = 6.0  # cap on network/straight distance ratio

    def __post_init__(self) -> None:
        if self.sigma <= 0 or self.beta <= 0:
            raise ValueError("sigma and beta must be positive")
        if self.max_instances < 1:
            raise ValueError("max_instances must be at least 1")


@dataclass
class _Partial:
    """One partial state sequence kept by the list-Viterbi pass."""

    log_probability: float
    candidate_indices: tuple[int, ...]
    paths: tuple[tuple[EdgeKey, ...], ...] = field(default_factory=tuple)


class ProbabilisticMapMatcher:
    """Matches raw trajectories to uncertain network trajectories."""

    def __init__(
        self, network: RoadNetwork, config: MatcherConfig | None = None
    ) -> None:
        self.network = network
        self.config = config or MatcherConfig()
        self.index = EdgeSpatialIndex(network)

    # ------------------------------------------------------------------
    def _transition(
        self, a: Candidate, b: Candidate, straight: float
    ) -> tuple[float, list[EdgeKey]] | None:
        """Log transition probability and connecting path, or ``None``
        when no plausible route exists."""
        route = self._route_between(a, b, straight)
        if route is None:
            return None
        path, network_distance = route
        discrepancy = abs(network_distance - straight)
        return -discrepancy / self.config.beta, path

    def _route_between(
        self, a: Candidate, b: Candidate, straight: float
    ) -> tuple[list[EdgeKey], float] | None:
        """Network route from position ``a`` to position ``b``.

        Returns the intermediate edges (between, not including, the two
        candidate edges — unless they differ) and the travel distance.
        """
        cutoff = max(straight * self.config.max_route_factor, 300.0)
        if a.edge == b.edge and b.ndist >= a.ndist:
            return [], b.ndist - a.ndist
        # drive to the end of a's edge, route to the start of b's edge
        remaining = self.network.edge_length(*a.edge) - a.ndist
        found = shortest_path(
            self.network, a.edge[1], b.edge[0], cutoff=cutoff
        )
        if found is None:
            return None
        path, length = found
        if path and path[0] == a.edge:
            # avoid immediately re-traversing a's edge backwards-forwards
            pass
        total = remaining + length + b.ndist
        return path, total

    # ------------------------------------------------------------------
    def match(self, raw: RawTrajectory) -> UncertainTrajectory | None:
        """Match one raw trajectory; ``None`` when no route connects the
        candidate chain (e.g. the fixes span disconnected components)."""
        config = self.config
        steps: list[list[Candidate]] = []
        for point in raw:
            step = candidates_for_point(
                self.index,
                point,
                search_radius=config.search_radius,
                sigma=config.sigma,
                max_candidates=config.max_candidates,
            )
            if not step:
                return None
            steps.append(step)

        beams: list[list[_Partial]] = [
            [
                _Partial(candidate.emission_log_probability, (i,), ())
                for i, candidate in enumerate(steps[0])
            ]
        ]
        points = list(raw)
        for step_index in range(1, len(steps)):
            previous_beam = beams[-1]
            straight = math.hypot(
                points[step_index].x - points[step_index - 1].x,
                points[step_index].y - points[step_index - 1].y,
            )
            extended: list[_Partial] = []
            for candidate_index, candidate in enumerate(steps[step_index]):
                for partial in previous_beam:
                    previous_candidate = steps[step_index - 1][
                        partial.candidate_indices[-1]
                    ]
                    transition = self._transition(
                        previous_candidate, candidate, straight
                    )
                    if transition is None:
                        continue
                    log_transition, path = transition
                    extended.append(
                        _Partial(
                            partial.log_probability
                            + log_transition
                            + candidate.emission_log_probability,
                            partial.candidate_indices + (candidate_index,),
                            partial.paths + (tuple(path),),
                        )
                    )
            if not extended:
                return None
            extended.sort(key=lambda p: -p.log_probability)
            beams.append(extended[: config.max_instances * 3])

        finals = sorted(beams[-1], key=lambda p: -p.log_probability)
        instances: list[TrajectoryInstance] = []
        seen: set[tuple] = set()
        weights: list[float] = []
        best_log = finals[0].log_probability
        for partial in finals:
            instance = self._assemble(steps, partial)
            if instance is None:
                continue
            signature = instance.signature()
            if signature in seen:
                continue
            seen.add(signature)
            instances.append(instance)
            weights.append(math.exp(partial.log_probability - best_log))
            if len(instances) == config.max_instances:
                break
        if not instances:
            return None
        total = sum(weights)
        quantum = 1.0 / 1024
        shares = [max(round(w / total / quantum), 1) for w in weights]
        shares[0] += round(1.0 / quantum) - sum(shares)
        if shares[0] < 1:
            return None  # degenerate weight distribution
        for instance, share in zip(instances, shares):
            instance.probability = share * quantum
        return UncertainTrajectory(0, instances, list(raw.times))

    # ------------------------------------------------------------------
    def _assemble(
        self, steps: list[list[Candidate]], partial: _Partial
    ) -> TrajectoryInstance | None:
        """Stitch candidate positions and connecting routes into one
        instance, tolerating same-edge consecutive fixes."""
        first = steps[0][partial.candidate_indices[0]]
        path: list[EdgeKey] = [first.edge]
        first_length = self.network.edge_length(*first.edge)
        locations = [
            MappedLocation(
                first.edge,
                min(max(round(first.ndist, 1), 0.0), first_length),
            )
        ]
        edge_indices = [0]
        for step_index in range(1, len(partial.candidate_indices)):
            candidate = steps[step_index][
                partial.candidate_indices[step_index]
            ]
            connecting = list(partial.paths[step_index - 1])
            if candidate.edge == path[-1] and not connecting:
                # same edge, moving forward
                edge_indices.append(len(path) - 1)
            else:
                for edge in connecting:
                    if edge != path[-1]:
                        path.append(edge)
                if candidate.edge != path[-1]:
                    if path[-1][1] != candidate.edge[0]:
                        return None  # disconnected stitch: drop this one
                    path.append(candidate.edge)
                edge_indices.append(len(path) - 1)
            length = self.network.edge_length(*candidate.edge)
            ndist = min(max(round(candidate.ndist, 1), 0.0), length)
            locations.append(MappedLocation(candidate.edge, ndist))
        # enforce monotone ndist for same-edge neighbors
        for i in range(1, len(locations)):
            if (
                edge_indices[i] == edge_indices[i - 1]
                and locations[i].ndist < locations[i - 1].ndist
            ):
                locations[i] = MappedLocation(
                    locations[i].edge, locations[i - 1].ndist
                )
        try:
            return TrajectoryInstance(
                path=path,
                locations=locations,
                probability=1.0,
                location_edge_indices=edge_indices,
            )
        except ValueError:
            return None

    def match_many(
        self, raws: list[RawTrajectory], *, start_id: int = 0
    ) -> list[UncertainTrajectory]:
        """Match a batch, renumbering trajectory ids and skipping failures."""
        results: list[UncertainTrajectory] = []
        next_id = start_id
        for raw in raws:
            matched = self.match(raw)
            if matched is not None:
                matched.trajectory_id = next_id
                next_id += 1
                results.append(matched)
        return results
