"""Probabilistic map matching: k-best Viterbi over an HMM (refs [2, 15]).

A raw trajectory becomes a *set* of network-constrained instances, each a
full joint assignment of candidates with a likelihood — exactly the input
Definition 5 expects.  The model is the standard map-matching HMM:

* states at step ``i``: the candidate road positions of fix ``i``;
* emissions: Gaussian in the fix-to-candidate distance;
* transitions: exponential in the discrepancy between the great-circle
  distance of consecutive fixes and the network distance between the
  candidates (routes much longer than the crow flies are unlikely).

Instead of the single best state sequence, a list-Viterbi pass keeps the
``k`` best partial sequences per state, yielding the top-``k`` complete
matchings; their likelihoods are normalized into instance probabilities.

The pass is decomposed into per-step operations (:meth:`ProbabilisticMapMatcher.
candidate_step`, :meth:`~ProbabilisticMapMatcher.initial_beam`,
:meth:`~ProbabilisticMapMatcher.extend_beam`,
:meth:`~ProbabilisticMapMatcher.finalize`) so that the batch
:meth:`~ProbabilisticMapMatcher.match` and the streaming
:class:`~repro.stream.ingest.StreamingMapMatcher` share one beam
implementation — the streaming matcher is exactly equivalent to batch
matching by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..network.graph import RoadNetwork
from ..network.shortest_path import FrontierCache
from ..network.spatial_index import EdgeSpatialIndex
from ..trajectories.model import (
    EdgeKey,
    MappedLocation,
    RawTrajectory,
    TrajectoryInstance,
    UncertainTrajectory,
)
from .candidates import Candidate, candidates_for_point


@dataclass
class MatcherConfig:
    """Tunables of the probabilistic matcher."""

    sigma: float = 25.0  # GPS noise scale (meters)
    beta: float = 60.0  # transition tolerance (meters of detour)
    search_radius: float = 60.0
    max_candidates: int = 4
    max_instances: int = 8
    max_route_factor: float = 6.0  # cap on network/straight distance ratio

    def __post_init__(self) -> None:
        if self.sigma <= 0 or self.beta <= 0:
            raise ValueError("sigma and beta must be positive")
        if self.max_instances < 1:
            raise ValueError("max_instances must be at least 1")


@dataclass
class BeamPartial:
    """One partial state sequence kept by the list-Viterbi pass.

    ``candidate_indices[i]`` indexes the candidate chosen at step ``i``;
    ``paths[i-1]`` holds the connecting edges between steps ``i-1`` and
    ``i``.  Partials are immutable-by-convention: extending a beam builds
    new partials, never rewrites history, which is what lets a streaming
    consumer treat an agreed-upon prefix as committed.
    """

    log_probability: float
    candidate_indices: tuple[int, ...]
    paths: tuple[tuple[EdgeKey, ...], ...] = field(default_factory=tuple)


#: backwards-compatible private alias (pre-streaming name)
_Partial = BeamPartial


class ProbabilisticMapMatcher:
    """Matches raw trajectories to uncertain network trajectories."""

    def __init__(
        self, network: RoadNetwork, config: MatcherConfig | None = None
    ) -> None:
        self.network = network
        self.config = config or MatcherConfig()
        self.index = EdgeSpatialIndex(network)
        # transition routing runs one shared-frontier Dijkstra per
        # (source vertex, cutoff) instead of one bounded search per
        # candidate pair; the cache stays warm across steps and trips,
        # and is shared with any StreamingMapMatcher wrapping this
        # matcher.  Matchings are identical either way (see
        # SharedFrontier); only the cycle count changes.
        self.frontier_cache = FrontierCache(network)

    # ------------------------------------------------------------------
    def _transition(
        self, a: Candidate, b: Candidate, straight: float
    ) -> tuple[float, list[EdgeKey]] | None:
        """Log transition probability and connecting path, or ``None``
        when no plausible route exists."""
        route = self._route_between(a, b, straight)
        if route is None:
            return None
        path, network_distance = route
        discrepancy = abs(network_distance - straight)
        return -discrepancy / self.config.beta, path

    def _route_between(
        self, a: Candidate, b: Candidate, straight: float
    ) -> tuple[list[EdgeKey], float] | None:
        """Network route from position ``a`` to position ``b``.

        Returns the intermediate edges (between, not including, the two
        candidate edges — unless they differ) and the travel distance.
        """
        cutoff = max(straight * self.config.max_route_factor, 300.0)
        if a.edge == b.edge and b.ndist >= a.ndist:
            return [], b.ndist - a.ndist
        # drive to the end of a's edge, route to the start of b's edge
        remaining = self.network.edge_length(*a.edge) - a.ndist
        found = self.frontier_cache.get(a.edge[1], cutoff).path_to(b.edge[0])
        if found is None:
            return None
        path, length = found
        if path and path[0] == a.edge:
            # avoid immediately re-traversing a's edge backwards-forwards
            pass
        total = remaining + length + b.ndist
        return path, total

    # ------------------------------------------------------------------
    # per-step operations (shared by batch match() and the streaming path)
    # ------------------------------------------------------------------
    def candidate_step(self, point) -> list[Candidate]:
        """Candidate road positions of one fix (empty = unmatchable fix)."""
        return candidates_for_point(
            self.index,
            point,
            search_radius=self.config.search_radius,
            sigma=self.config.sigma,
            max_candidates=self.config.max_candidates,
        )

    def candidate_location(self, candidate: Candidate) -> MappedLocation:
        """A candidate as a mapped location, with the ndist rounding and
        clamping convention every emitted location uses."""
        length = self.network.edge_length(*candidate.edge)
        return MappedLocation(
            candidate.edge,
            min(max(round(candidate.ndist, 1), 0.0), length),
        )

    def initial_beam(self, step: list[Candidate]) -> list[BeamPartial]:
        """The beam after observing the first fix: one partial per candidate."""
        return [
            BeamPartial(candidate.emission_log_probability, (i,), ())
            for i, candidate in enumerate(step)
        ]

    def extend_beam(
        self,
        beam: list[BeamPartial],
        previous_step: list[Candidate],
        step: list[Candidate],
        straight: float,
    ) -> list[BeamPartial]:
        """One Viterbi step: extend every partial to every new candidate.

        ``straight`` is the great-circle distance between the two fixes.
        Returns the pruned beam (best ``max_instances * 3`` partials),
        empty when no transition connects the steps — the trajectory is
        unmatchable from here on.
        """
        extended: list[BeamPartial] = []
        for candidate_index, candidate in enumerate(step):
            for partial in beam:
                previous_candidate = previous_step[
                    partial.candidate_indices[-1]
                ]
                transition = self._transition(
                    previous_candidate, candidate, straight
                )
                if transition is None:
                    continue
                log_transition, path = transition
                extended.append(
                    BeamPartial(
                        partial.log_probability
                        + log_transition
                        + candidate.emission_log_probability,
                        partial.candidate_indices + (candidate_index,),
                        partial.paths + (tuple(path),),
                    )
                )
        extended.sort(key=lambda p: -p.log_probability)
        return extended[: self.config.max_instances * 3]

    def finalize(
        self,
        steps: list[list[Candidate]],
        beam: list[BeamPartial],
        times: list[int],
    ) -> UncertainTrajectory | None:
        """Assemble the surviving beam into an uncertain trajectory.

        ``None`` when no partial assembles into a valid instance (or the
        weight distribution degenerates).
        """
        if not beam:
            return None
        finals = sorted(beam, key=lambda p: -p.log_probability)
        instances: list[TrajectoryInstance] = []
        seen: set[tuple] = set()
        weights: list[float] = []
        best_log = finals[0].log_probability
        for partial in finals:
            instance = self._assemble(steps, partial)
            if instance is None:
                continue
            signature = instance.signature()
            if signature in seen:
                continue
            seen.add(signature)
            instances.append(instance)
            weights.append(math.exp(partial.log_probability - best_log))
            if len(instances) == self.config.max_instances:
                break
        if not instances:
            return None
        total = sum(weights)
        quantum = 1.0 / 1024
        shares = [max(round(w / total / quantum), 1) for w in weights]
        shares[0] += round(1.0 / quantum) - sum(shares)
        if shares[0] < 1:
            return None  # degenerate weight distribution
        for instance, share in zip(instances, shares):
            instance.probability = share * quantum
        return UncertainTrajectory(0, instances, list(times))

    # ------------------------------------------------------------------
    def match(self, raw: RawTrajectory) -> UncertainTrajectory | None:
        """Match one raw trajectory; ``None`` when no route connects the
        candidate chain (e.g. the fixes span disconnected components)."""
        steps: list[list[Candidate]] = []
        for point in raw:
            step = self.candidate_step(point)
            if not step:
                return None
            steps.append(step)

        beam = self.initial_beam(steps[0])
        points = list(raw)
        for step_index in range(1, len(steps)):
            straight = math.hypot(
                points[step_index].x - points[step_index - 1].x,
                points[step_index].y - points[step_index - 1].y,
            )
            beam = self.extend_beam(
                beam, steps[step_index - 1], steps[step_index], straight
            )
            if not beam:
                return None
        return self.finalize(steps, beam, list(raw.times))

    # ------------------------------------------------------------------
    def _assemble(
        self, steps: list[list[Candidate]], partial: _Partial
    ) -> TrajectoryInstance | None:
        """Stitch candidate positions and connecting routes into one
        instance, tolerating same-edge consecutive fixes."""
        first = steps[0][partial.candidate_indices[0]]
        path: list[EdgeKey] = [first.edge]
        locations = [self.candidate_location(first)]
        edge_indices = [0]
        for step_index in range(1, len(partial.candidate_indices)):
            candidate = steps[step_index][
                partial.candidate_indices[step_index]
            ]
            connecting = list(partial.paths[step_index - 1])
            if candidate.edge == path[-1] and not connecting:
                # same edge, moving forward
                edge_indices.append(len(path) - 1)
            else:
                for edge in connecting:
                    if edge != path[-1]:
                        path.append(edge)
                if candidate.edge != path[-1]:
                    if path[-1][1] != candidate.edge[0]:
                        return None  # disconnected stitch: drop this one
                    path.append(candidate.edge)
                edge_indices.append(len(path) - 1)
            locations.append(self.candidate_location(candidate))
        # enforce monotone ndist for same-edge neighbors
        for i in range(1, len(locations)):
            if (
                edge_indices[i] == edge_indices[i - 1]
                and locations[i].ndist < locations[i - 1].ndist
            ):
                locations[i] = MappedLocation(
                    locations[i].edge, locations[i - 1].ndist
                )
        try:
            return TrajectoryInstance(
                path=path,
                locations=locations,
                probability=1.0,
                location_edge_indices=edge_indices,
            )
        except ValueError:
            return None

    def match_many(
        self, raws: list[RawTrajectory], *, start_id: int = 0
    ) -> list[UncertainTrajectory]:
        """Match a batch, renumbering trajectory ids and skipping failures."""
        results: list[UncertainTrajectory] = []
        next_id = start_id
        for raw in raws:
            matched = self.match(raw)
            if matched is not None:
                matched.trajectory_id = next_id
                next_id += 1
                results.append(matched)
        return results
