"""Raw-GPS synthesis: ground-truth drives + noisy fixes.

Closes the loop for the full pipeline (Fig. 1): a vehicle drives a
network path at roughly constant speed; fixes are sampled at the dataset
interval and perturbed with Gaussian noise, yielding the off-road points
real GPS produces.  Feeding these through the probabilistic matcher
produces uncertain trajectories end to end.
"""

from __future__ import annotations

import random

from ..network.graph import RoadNetwork
from ..network.shortest_path import random_walk_path
from ..trajectories.generators import GenerationConfig, draw_time_sequence
from ..trajectories.model import RawPoint, RawTrajectory
from ..trajectories.path import PathChainage


def synthesize_raw_trajectory(
    network: RoadNetwork,
    config: GenerationConfig,
    rng: random.Random,
    *,
    speed: float = 10.0,
    noise_sigma: float = 15.0,
    edge_count: int | None = None,
) -> RawTrajectory:
    """One noisy raw trajectory along a random ground-truth drive."""
    if speed <= 0:
        raise ValueError("speed must be positive")
    vertex_ids = list(network.vertex_ids())
    edges = edge_count or max(int(config.mean_edges), 2)
    path = []
    for _ in range(30):
        path = random_walk_path(network, rng.choice(vertex_ids), edges, rng.choice)
        if len(path) >= 2:
            break
    if len(path) < 2:
        raise RuntimeError("network too sparse for a ground-truth drive")
    chain = PathChainage(network, path)
    duration = chain.total_length / speed
    point_count = max(int(duration // config.default_interval), 2)
    times = draw_time_sequence(config, point_count, rng)
    points: list[RawPoint] = []
    for index, t in enumerate(times):
        elapsed = t - times[0]
        chainage = min(elapsed * speed, chain.total_length)
        position = chain.position_at(chainage)
        a = network.vertex(position.edge[0])
        b = network.vertex(position.edge[1])
        fraction = position.ndist / network.edge_length(*position.edge)
        x = a.x + (b.x - a.x) * fraction + rng.gauss(0.0, noise_sigma)
        y = a.y + (b.y - a.y) * fraction + rng.gauss(0.0, noise_sigma)
        points.append(RawPoint(x, y, t))
    return RawTrajectory(tuple(points))


def synthesize_raw_dataset(
    network: RoadNetwork,
    config: GenerationConfig,
    count: int,
    *,
    seed: int = 23,
    speed: float = 10.0,
    noise_sigma: float = 15.0,
) -> list[RawTrajectory]:
    """A batch of noisy raw trajectories."""
    rng = random.Random(seed)
    return [
        synthesize_raw_trajectory(
            network, config, rng, speed=speed, noise_sigma=noise_sigma
        )
        for _ in range(count)
    ]
