"""Candidate generation for probabilistic map matching.

For every raw GPS fix, the matcher considers the road positions it may
have been recorded from: projections onto all edges within a search
radius, scored by an emission probability (a zero-mean Gaussian over the
projection distance, the standard choice in HMM map matching [2, 15]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..network.spatial_index import EdgeSpatialIndex
from ..trajectories.model import EdgeKey, RawPoint


@dataclass(frozen=True)
class Candidate:
    """One possible road position of a raw GPS fix."""

    edge: EdgeKey
    ndist: float
    distance: float  # Euclidean distance from the raw fix
    emission_log_probability: float


def emission_log_probability(distance: float, sigma: float) -> float:
    """Log of the Gaussian emission density (up to a shared constant)."""
    return -0.5 * (distance / sigma) ** 2 - math.log(sigma)


def candidates_for_point(
    index: EdgeSpatialIndex,
    point: RawPoint,
    *,
    search_radius: float,
    sigma: float,
    max_candidates: int = 6,
) -> list[Candidate]:
    """Candidate road positions for one fix, best (nearest) first.

    Falls back to the single nearest edge when nothing lies within the
    search radius (GPS outliers should not abort the whole trajectory).
    """
    hits = index.edges_near(point.x, point.y, search_radius)
    if not hits:
        nearest = index.nearest_edge(point.x, point.y)
        if nearest is None:
            return []
        hits = [nearest]
    results: list[Candidate] = []
    for edge_key, t, distance in hits[:max_candidates]:
        length = index.network.edge_length(*edge_key)
        results.append(
            Candidate(
                edge=edge_key,
                ndist=t * length,
                distance=distance,
                emission_log_probability=emission_log_probability(
                    distance, sigma
                ),
            )
        )
    return results
