"""Lazy, file-backed access to a ``.utcq`` archive.

:class:`FileBackedArchive` mirrors the read-side surface of
:class:`~repro.core.archive.CompressedArchive` — ``params``, ``stats``,
``trajectory(id)``, iteration over ``trajectories`` — but decodes each
trajectory record straight off disk on first touch, keeping only a
bounded LRU of decoded trajectories in memory.  This lets the StIU index
and the query processor run against an archive file without ever
materializing the whole dataset (the `info`/`query` CLI path).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

from ..core.archive import CompressedTrajectory, CompressionParams, CompressionStats
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from .format import (
    ArchiveFormatError,
    ArchiveHeader,
    CorruptArchiveError,
    decode_trajectory_record,
    read_header,
    record_crc,
)

DEFAULT_CACHE_SIZE = 128

_log = get_logger("repro.io.reader")


class ArchiveClosedError(ValueError):
    """A closed archive was closed again or read from.

    Raised instead of the cryptic ``ValueError: seek of closed file``
    the underlying stream would otherwise produce.
    """


class _LazyTrajectorySequence:
    """Read-only sequence view over a file-backed archive's trajectories."""

    def __init__(self, archive: "FileBackedArchive") -> None:
        self._archive = archive

    def __len__(self) -> int:
        return self._archive.trajectory_count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        entry = self._archive.header.directory[index]
        return self._archive.trajectory(entry.trajectory_id)

    def __iter__(self):
        for entry in self._archive.header.directory:
            yield self._archive.trajectory(entry.trajectory_id)


class FileBackedArchive:
    """A compressed archive whose trajectories live on disk.

    Use as a context manager (or call :meth:`close`)::

        with FileBackedArchive.open("cd.utcq") as archive:
            index = StIUIndex(network, archive)
            ...

    ``verify_crc`` checks each record's CRC-32 the first time it is
    loaded; disable it for hot paths that trust the file.
    """

    def __init__(
        self,
        stream,
        header: ArchiveHeader,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        verify_crc: bool = True,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self._stream = stream
        self.header = header
        self.cache_size = cache_size
        self.verify_crc = verify_crc
        self._cache: OrderedDict[int, CompressedTrajectory] = OrderedDict()
        self._id_to_entry = {
            entry.trajectory_id: entry for entry in header.directory
        }
        self._closed = False
        # Concurrent readers: positional reads (os.pread) share one file
        # descriptor without seek races; streams without a descriptor
        # (e.g. BytesIO) fall back to seek+read under the lock.  The same
        # lock also guards LRU mutation, so a thread pool can hammer
        # ``trajectory()`` while record decoding itself runs unlocked.
        self._lock = threading.Lock()
        try:
            self._fd: int | None = stream.fileno()
        except (AttributeError, OSError, ValueError):
            self._fd = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        verify_crc: bool = True,
    ) -> "FileBackedArchive":
        stream = open(path, "rb")
        try:
            header = read_header(stream)
        except Exception:
            stream.close()
            raise
        return cls(
            stream, header, cache_size=cache_size, verify_crc=verify_crc
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the file.  Closing twice is an error — it almost
        always means two owners believe they hold the archive."""
        with self._lock:
            if self._closed:
                raise ArchiveClosedError(
                    "FileBackedArchive is already closed"
                )
            self._closed = True
            self._cache.clear()
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "FileBackedArchive":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()

    # ------------------------------------------------------------------
    # CompressedArchive-compatible surface
    # ------------------------------------------------------------------
    @property
    def params(self) -> CompressionParams:
        return self.header.params

    @property
    def stats(self) -> CompressionStats:
        return self.header.stats

    @property
    def provenance(self) -> dict[str, str]:
        return dict(self.header.provenance)

    @property
    def trajectory_count(self) -> int:
        return self.header.trajectory_count

    @property
    def instance_count(self) -> int:
        return self.header.instance_count

    @property
    def compressed_bytes(self) -> int:
        return (self.stats.compressed.total + 7) // 8

    @property
    def original_bytes(self) -> int:
        return (self.stats.original.total + 7) // 8

    @property
    def trajectories(self) -> _LazyTrajectorySequence:
        return _LazyTrajectorySequence(self)

    def trajectory_ids(self) -> list[int]:
        return [entry.trajectory_id for entry in self.header.directory]

    def trajectory(self, trajectory_id: int) -> CompressedTrajectory:
        """Load (or fetch from cache) a single trajectory by id.

        Safe to call from multiple threads: a cache miss reads the
        record with a positional ``pread`` (no shared seek cursor) and
        decodes it outside the lock.  Two threads racing on the same
        uncached id may both decode it; records are immutable, so the
        last write to the cache wins harmlessly.
        """
        if self._closed:
            raise ArchiveClosedError(
                f"cannot load trajectory {trajectory_id}: the archive "
                f"is closed"
            )
        with self._lock:
            cached = self._cache.get(trajectory_id)
            if cached is not None:
                self._cache.move_to_end(trajectory_id)
                return cached
        entry = self._id_to_entry.get(trajectory_id)
        if entry is None:
            raise KeyError(f"no trajectory {trajectory_id} in the archive")
        record = self._read_record(entry)
        if len(record) != entry.length:
            raise self._corrupt(
                "truncated", f"truncated record for trajectory {trajectory_id}"
            )
        if self.verify_crc and record_crc(record) != entry.crc32:
            raise self._corrupt(
                "crc_mismatch", f"CRC mismatch for trajectory {trajectory_id}"
            )
        trajectory = decode_trajectory_record(record)
        if trajectory.trajectory_id != trajectory_id:
            raise self._corrupt(
                "id_mismatch",
                f"directory/record id mismatch: {trajectory_id} != "
                f"{trajectory.trajectory_id}",
            )
        with self._lock:
            self._cache[trajectory_id] = trajectory
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return trajectory

    def _corrupt(self, reason: str, message: str) -> CorruptArchiveError:
        """Count + log a damaged record, return the error to raise."""
        obs_metrics.counter(
            "repro_io_corrupt_records_total", labels={"reason": reason}
        ).inc()
        _log.warning("io.corrupt_record", reason=reason, detail=message)
        return CorruptArchiveError(message)

    def _read_record(self, entry) -> bytes:
        if self._fd is not None:
            try:
                return os.pread(self._fd, entry.length, entry.offset)
            except OSError:
                if self._closed:
                    raise ArchiveClosedError(
                        "FileBackedArchive was closed during a read"
                    ) from None
                raise
        with self._lock:
            if self._closed:
                raise ArchiveClosedError(
                    "FileBackedArchive was closed during a read"
                )
            self._stream.seek(entry.offset)
            return self._stream.read(entry.length)

    def cached_trajectory_count(self) -> int:
        """How many decoded trajectories are currently resident."""
        return len(self._cache)
