"""The ``.utcq`` on-disk archive format (version 1).

A :class:`~repro.core.archive.CompressedArchive` is written as a small
fixed header followed by a per-trajectory directory and one variable-
length record per trajectory.  The directory stores absolute byte
offsets, so a single trajectory can be loaded without touching the rest
of the file (:class:`~repro.io.reader.FileBackedArchive` builds on this).

All compressed payloads (SIAR time streams, reference and factor
streams) are stored verbatim — the same bytes :class:`~repro.bits.bitio.
BitWriter` produced at compression time, together with their exact bit
counts — so serialization round-trips bit-for-bit and every StIU offset
(``t.pos``, ``d.pos``, ``ma.pos``, the per-instance section offsets)
remains valid against the on-disk stream.

Layout (all integers little-endian)::

    +--------------------------------------------------------------+
    | magic  "UTCQARC\\0" (8)  | version u16 | flags u16            |
    | params: eta_d f64, eta_p f64, interval u32, symbol_width u16,|
    |         t0_bits u16, pivot_count u32                         |
    | stats: 12 x u64 (original T/E/D/T'/p/overhead bits,          |
    |                  then compressed, same order)                 |
    | provenance: count u32, then (klen u16, key, vlen u16, value) |
    | trajectory_count u32, instance_count u64                     |
    +--------------------------------------------------------------+
    | directory: trajectory_count x 32-byte entries                |
    |   trajectory_id u64 | offset u64 | length u64 | crc32 u32 |  |
    |   reserved u32                                               |
    +--------------------------------------------------------------+
    | records (one per trajectory, LEB128 varints + raw payloads)  |
    +--------------------------------------------------------------+

Record layout (``uv`` = unsigned LEB128 varint)::

    uv trajectory_id, uv point_count, uv start_time, uv end_time
    uv time_payload_bits, raw time payload ((bits + 7) // 8 bytes)
    uv n_deviation_positions, n x uv
    12 x uv (the trajectory's CompressionStats, header order)
    uv instance_count, then per instance:
        u8 flags (bit0 = is_reference, bit1 = has start_vertex)
        [uv start_vertex]  (iff bit1)
        uv reference_ordinal
        uv payload_bits, raw payload
        uv edge_offset, uv flags_offset, uv distance_offset,
        uv probability_offset
        uv n_distance_positions, n x uv
        uv n_factor_positions, n x uv
        f64 probability
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO

from ..core.archive import (
    CompressedArchive,
    CompressedInstance,
    CompressedTrajectory,
    ComponentBits,
    CompressionParams,
    CompressionStats,
)

MAGIC = b"UTCQARC\x00"
VERSION = 1

_HEAD = struct.Struct("<8sHH")
_PARAMS = struct.Struct("<ddIHHI")
_STATS = struct.Struct("<12Q")
_COUNTS = struct.Struct("<IQ")
_DIRENT = struct.Struct("<QQQII")
_KVLEN = struct.Struct("<H")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

DIRECTORY_ENTRY_SIZE = _DIRENT.size

_FLAG_REFERENCE = 1
_FLAG_START_VERTEX = 2

_STATS_FIELDS = (
    "time",
    "edge",
    "distance",
    "flags",
    "probability",
    "overhead",
)


class ArchiveFormatError(Exception):
    """Raised when a file is not a valid version-1 ``.utcq`` archive."""


class CorruptArchiveError(ArchiveFormatError):
    """A structurally valid archive whose stored bytes are damaged.

    Raised when a trajectory record contradicts its directory entry —
    CRC-32 mismatch, short read, or a record carrying the wrong
    trajectory id.  Distinct from :class:`ArchiveFormatError` proper
    (wrong magic/version: the file was never one of ours) so a serving
    tier can quarantine a damaged shard instead of treating it like a
    malformed input.
    """


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise ArchiveFormatError(f"cannot store negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, position: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; returns ``(value, new_position)``."""
    value = 0
    shift = 0
    while True:
        if position >= len(data):
            raise ArchiveFormatError("truncated varint")
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7
        if shift > 70:
            raise ArchiveFormatError("varint too long")


def _write_uvarint_seq(out: bytearray, values: tuple[int, ...]) -> None:
    write_uvarint(out, len(values))
    for value in values:
        write_uvarint(out, value)


def _read_uvarint_seq(data: bytes, position: int) -> tuple[tuple[int, ...], int]:
    count, position = read_uvarint(data, position)
    values = []
    for _ in range(count):
        value, position = read_uvarint(data, position)
        values.append(value)
    return tuple(values), position


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def _stats_values(stats: CompressionStats) -> list[int]:
    return [getattr(stats.original, name) for name in _STATS_FIELDS] + [
        getattr(stats.compressed, name) for name in _STATS_FIELDS
    ]


def _stats_from_values(values: tuple[int, ...]) -> CompressionStats:
    original = ComponentBits(*values[:6])
    compressed = ComponentBits(*values[6:12])
    return CompressionStats(original=original, compressed=compressed)


# ----------------------------------------------------------------------
# trajectory records
# ----------------------------------------------------------------------
def encode_trajectory_record(trajectory: CompressedTrajectory) -> bytes:
    """Serialize one compressed trajectory to its on-disk record."""
    out = bytearray()
    write_uvarint(out, trajectory.trajectory_id)
    write_uvarint(out, trajectory.point_count)
    write_uvarint(out, trajectory.start_time)
    write_uvarint(out, trajectory.end_time)
    payload_bytes = (trajectory.time_payload_bits + 7) // 8
    if len(trajectory.time_payload) != payload_bytes:
        raise ArchiveFormatError(
            f"time payload of trajectory {trajectory.trajectory_id} has "
            f"{len(trajectory.time_payload)} bytes for "
            f"{trajectory.time_payload_bits} bits"
        )
    write_uvarint(out, trajectory.time_payload_bits)
    out += trajectory.time_payload
    _write_uvarint_seq(out, trajectory.deviation_positions)
    for value in _stats_values(trajectory.stats):
        write_uvarint(out, value)
    write_uvarint(out, len(trajectory.instances))
    for instance in trajectory.instances:
        _encode_instance(out, instance)
    return bytes(out)


def _encode_instance(out: bytearray, instance: CompressedInstance) -> None:
    flags = 0
    if instance.is_reference:
        flags |= _FLAG_REFERENCE
    if instance.start_vertex is not None:
        flags |= _FLAG_START_VERTEX
    out.append(flags)
    if instance.start_vertex is not None:
        write_uvarint(out, instance.start_vertex)
    write_uvarint(out, instance.reference_ordinal)
    payload_bytes = (instance.payload_bits + 7) // 8
    if len(instance.payload) != payload_bytes:
        raise ArchiveFormatError(
            f"instance payload has {len(instance.payload)} bytes for "
            f"{instance.payload_bits} bits"
        )
    write_uvarint(out, instance.payload_bits)
    out += instance.payload
    write_uvarint(out, instance.edge_offset)
    write_uvarint(out, instance.flags_offset)
    write_uvarint(out, instance.distance_offset)
    write_uvarint(out, instance.probability_offset)
    _write_uvarint_seq(out, instance.distance_positions)
    _write_uvarint_seq(out, instance.factor_positions)
    out += _F64.pack(instance.probability)


def decode_trajectory_record(data: bytes) -> CompressedTrajectory:
    """Parse one on-disk record back into a compressed trajectory."""
    position = 0
    trajectory_id, position = read_uvarint(data, position)
    point_count, position = read_uvarint(data, position)
    start_time, position = read_uvarint(data, position)
    end_time, position = read_uvarint(data, position)
    time_payload_bits, position = read_uvarint(data, position)
    payload_bytes = (time_payload_bits + 7) // 8
    time_payload = bytes(data[position : position + payload_bytes])
    if len(time_payload) != payload_bytes:
        raise ArchiveFormatError("truncated time payload")
    position += payload_bytes
    deviation_positions, position = _read_uvarint_seq(data, position)
    stats_values = []
    for _ in range(12):
        value, position = read_uvarint(data, position)
        stats_values.append(value)
    stats = _stats_from_values(tuple(stats_values))
    instance_count, position = read_uvarint(data, position)
    instances = []
    for _ in range(instance_count):
        instance, position = _decode_instance(data, position)
        instances.append(instance)
    if position != len(data):
        raise ArchiveFormatError(
            f"trailing bytes in record of trajectory {trajectory_id}"
        )
    return CompressedTrajectory(
        trajectory_id=trajectory_id,
        time_payload=time_payload,
        time_payload_bits=time_payload_bits,
        point_count=point_count,
        start_time=start_time,
        end_time=end_time,
        deviation_positions=deviation_positions,
        instances=instances,
        stats=stats,
    )


def _decode_instance(
    data: bytes, position: int
) -> tuple[CompressedInstance, int]:
    if position >= len(data):
        raise ArchiveFormatError("truncated instance record")
    flags = data[position]
    position += 1
    start_vertex: int | None = None
    if flags & _FLAG_START_VERTEX:
        start_vertex, position = read_uvarint(data, position)
    reference_ordinal, position = read_uvarint(data, position)
    payload_bits, position = read_uvarint(data, position)
    payload_bytes = (payload_bits + 7) // 8
    payload = bytes(data[position : position + payload_bytes])
    if len(payload) != payload_bytes:
        raise ArchiveFormatError("truncated instance payload")
    position += payload_bytes
    edge_offset, position = read_uvarint(data, position)
    flags_offset, position = read_uvarint(data, position)
    distance_offset, position = read_uvarint(data, position)
    probability_offset, position = read_uvarint(data, position)
    distance_positions, position = _read_uvarint_seq(data, position)
    factor_positions, position = _read_uvarint_seq(data, position)
    if position + _F64.size > len(data):
        raise ArchiveFormatError("truncated instance probability")
    (probability,) = _F64.unpack_from(data, position)
    position += _F64.size
    instance = CompressedInstance(
        is_reference=bool(flags & _FLAG_REFERENCE),
        payload=payload,
        payload_bits=payload_bits,
        start_vertex=start_vertex,
        reference_ordinal=reference_ordinal,
        edge_offset=edge_offset,
        flags_offset=flags_offset,
        distance_offset=distance_offset,
        probability_offset=probability_offset,
        distance_positions=distance_positions,
        factor_positions=factor_positions,
        probability=probability,
    )
    return instance, position


# ----------------------------------------------------------------------
# header + directory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DirectoryEntry:
    """One fixed-size directory slot: where a trajectory record lives."""

    trajectory_id: int
    offset: int
    length: int
    crc32: int


@dataclass
class ArchiveHeader:
    """Everything before the records: params, stats, provenance, directory."""

    version: int
    params: CompressionParams
    stats: CompressionStats
    provenance: dict[str, str]
    trajectory_count: int
    instance_count: int
    directory: list[DirectoryEntry] = field(default_factory=list)


def write_header(
    out: BinaryIO,
    params: CompressionParams,
    stats: CompressionStats,
    provenance: dict[str, str],
    trajectory_count: int,
    instance_count: int,
) -> int:
    """Write everything up to (excluding) the directory; returns byte size."""
    blob = bytearray()
    blob += _HEAD.pack(MAGIC, VERSION, 0)
    blob += _PARAMS.pack(
        params.eta_distance,
        params.eta_probability,
        params.default_interval,
        params.symbol_width,
        params.t0_bits,
        params.pivot_count,
    )
    blob += _STATS.pack(*_stats_values(stats))
    blob += _U32.pack(len(provenance))
    for key, value in provenance.items():
        key_bytes = key.encode("utf-8")
        value_bytes = value.encode("utf-8")
        blob += _KVLEN.pack(len(key_bytes)) + key_bytes
        blob += _KVLEN.pack(len(value_bytes)) + value_bytes
    blob += _COUNTS.pack(trajectory_count, instance_count)
    out.write(bytes(blob))
    return len(blob)


def write_directory(out: BinaryIO, entries: list[DirectoryEntry]) -> None:
    for entry in entries:
        out.write(
            _DIRENT.pack(
                entry.trajectory_id, entry.offset, entry.length, entry.crc32, 0
            )
        )


def read_header(stream: BinaryIO) -> ArchiveHeader:
    """Read and validate the header + directory from ``stream`` (at 0)."""

    def take(size: int, what: str) -> bytes:
        data = stream.read(size)
        if len(data) != size:
            raise ArchiveFormatError(f"truncated archive ({what})")
        return data

    magic, version, _flags = _HEAD.unpack(take(_HEAD.size, "magic"))
    if magic != MAGIC:
        raise ArchiveFormatError(
            f"bad magic {magic!r}; not a UTCQ archive"
        )
    if version != VERSION:
        raise ArchiveFormatError(
            f"unsupported archive version {version} (reader supports {VERSION})"
        )
    (
        eta_distance,
        eta_probability,
        default_interval,
        symbol_width,
        t0_bits,
        pivot_count,
    ) = _PARAMS.unpack(take(_PARAMS.size, "params"))
    params = CompressionParams(
        eta_distance=eta_distance,
        eta_probability=eta_probability,
        default_interval=default_interval,
        symbol_width=symbol_width,
        t0_bits=t0_bits,
        pivot_count=pivot_count,
    )
    stats = _stats_from_values(_STATS.unpack(take(_STATS.size, "stats")))
    (provenance_count,) = _U32.unpack(take(_U32.size, "provenance count"))
    provenance: dict[str, str] = {}
    for _ in range(provenance_count):
        (key_length,) = _KVLEN.unpack(take(_KVLEN.size, "provenance key"))
        key = take(key_length, "provenance key").decode("utf-8")
        (value_length,) = _KVLEN.unpack(take(_KVLEN.size, "provenance value"))
        provenance[key] = take(value_length, "provenance value").decode("utf-8")
    trajectory_count, instance_count = _COUNTS.unpack(
        take(_COUNTS.size, "counts")
    )
    directory = []
    for _ in range(trajectory_count):
        trajectory_id, offset, length, crc, _reserved = _DIRENT.unpack(
            take(_DIRENT.size, "directory")
        )
        directory.append(DirectoryEntry(trajectory_id, offset, length, crc))
    return ArchiveHeader(
        version=version,
        params=params,
        stats=stats,
        provenance=provenance,
        trajectory_count=trajectory_count,
        instance_count=instance_count,
        directory=directory,
    )


def record_crc(record: bytes) -> int:
    return zlib.crc32(record) & 0xFFFFFFFF


def write_archive(
    archive: CompressedArchive,
    path,
    *,
    provenance: dict[str, str] | None = None,
) -> int:
    """Serialize ``archive`` to ``path``; returns the file size in bytes.

    ``provenance`` is an optional string-to-string map recorded in the
    header — the CLI stores the generating dataset profile/seed there so
    ``query``/``decompress`` can rebuild the matching road network.
    """
    provenance = dict(provenance or {})
    records = [
        encode_trajectory_record(trajectory)
        for trajectory in archive.trajectories
    ]
    with open(path, "wb") as out:
        header_size = write_header(
            out,
            archive.params,
            archive.stats,
            provenance,
            len(records),
            archive.instance_count,
        )
        offset = header_size + DIRECTORY_ENTRY_SIZE * len(records)
        entries = []
        for trajectory, record in zip(archive.trajectories, records):
            entries.append(
                DirectoryEntry(
                    trajectory.trajectory_id,
                    offset,
                    len(record),
                    record_crc(record),
                )
            )
            offset += len(record)
        write_directory(out, entries)
        for record in records:
            out.write(record)
    return offset


def read_archive(path) -> CompressedArchive:
    """Eagerly read a whole archive back into memory.

    Verifies every record CRC; for lazy access use
    :class:`~repro.io.reader.FileBackedArchive` instead.
    """
    with open(path, "rb") as stream:
        header = read_header(stream)
        trajectories = []
        for entry in header.directory:
            stream.seek(entry.offset)
            record = stream.read(entry.length)
            if len(record) != entry.length:
                raise CorruptArchiveError(
                    f"truncated record for trajectory {entry.trajectory_id}"
                )
            if record_crc(record) != entry.crc32:
                raise CorruptArchiveError(
                    f"CRC mismatch for trajectory {entry.trajectory_id}"
                )
            trajectories.append(decode_trajectory_record(record))
    return CompressedArchive(
        params=header.params, trajectories=trajectories, stats=header.stats
    )
