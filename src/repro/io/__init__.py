"""Persistence: the versioned ``.utcq`` on-disk archive format.

``write_archive``/``read_archive`` round-trip a
:class:`~repro.core.archive.CompressedArchive` bit-exactly;
:class:`FileBackedArchive` serves queries straight off the file with
lazy per-trajectory loading.
"""

from .format import (
    MAGIC,
    VERSION,
    ArchiveFormatError,
    ArchiveHeader,
    CorruptArchiveError,
    DirectoryEntry,
    read_archive,
    read_header,
    write_archive,
)
from .reader import ArchiveClosedError, FileBackedArchive

__all__ = [
    "MAGIC",
    "VERSION",
    "ArchiveClosedError",
    "ArchiveFormatError",
    "ArchiveHeader",
    "CorruptArchiveError",
    "DirectoryEntry",
    "read_archive",
    "read_header",
    "write_archive",
    "FileBackedArchive",
]
