"""The TED-side query baseline: a temporal-only index.

TED's original index targets accurate trajectories: "it considers neither
the uncertainty nor is applicable to referentially represented trajectory
instances" (§1).  Our baseline reproduces those limitations faithfully:

* trajectories are bucketed by time interval only (no spatial grid);
* no ``p_total`` / ``p_max`` pruning exists, so probability thresholds are
  checked only after decoding;
* every candidate instance must be *fully* decoded before a spatial or
  temporal predicate can be evaluated.

Queries therefore return the same answers as UTCQ's StIU processor (both
are exact over the same lossy PDDP codes) but touch far more data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.graph import RoadNetwork
from ..network.grid import Rect
from ..trajectories.model import EdgeKey, TrajectoryInstance
from ..trajectories.path import InstanceChainage
from .compressor import (
    TedArchive,
    decode_ted_instance_tuple,
    decode_ted_times,
)
from ..core.improved_ted import decode_instance


@dataclass(frozen=True)
class TedWhereResult:
    """A located instance: edge, network distance, and probability."""

    trajectory_id: int
    instance_index: int
    edge: EdgeKey
    ndist: float
    probability: float


@dataclass(frozen=True)
class TedWhenResult:
    """A passing time for a queried location."""

    trajectory_id: int
    instance_index: int
    time: float
    probability: float


class TedQueryIndex:
    """Temporal-partition index over a TED archive."""

    def __init__(
        self,
        network: RoadNetwork,
        archive: TedArchive,
        *,
        time_partition_seconds: int = 1800,
    ) -> None:
        if time_partition_seconds < 1:
            raise ValueError("time partition must be at least one second")
        self.network = network
        self.archive = archive
        self.time_partition_seconds = time_partition_seconds
        self._buckets: dict[int, list[int]] = {}
        for position, trajectory in enumerate(archive.trajectories):
            first = trajectory.start_time // time_partition_seconds
            last = trajectory.end_time // time_partition_seconds
            for bucket in range(first, last + 1):
                self._buckets.setdefault(bucket, []).append(position)

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Index size: one 4-byte trajectory slot per bucket entry plus a
        4-byte bucket key each."""
        return sum(4 + 4 * len(v) for v in self._buckets.values())

    def _candidates(self, t: int) -> list[int]:
        return self._buckets.get(t // self.time_partition_seconds, [])

    def _decode_all_instances(
        self, position: int
    ) -> tuple[list[int], list[TrajectoryInstance]]:
        trajectory = self.archive.trajectories[position]
        times = decode_ted_times(self.archive, trajectory)
        instances = [
            decode_instance(
                self.network, decode_ted_instance_tuple(self.archive, inst)
            )
            for inst in trajectory.instances
        ]
        return times, instances

    # ------------------------------------------------------------------
    def where(
        self, trajectory_id: int, t: int, alpha: float
    ) -> list[TedWhereResult]:
        """Probabilistic where query (Definition 10) on TED data."""
        trajectory = self.archive.trajectory(trajectory_id)
        position = self.archive.trajectories.index(trajectory)
        times, instances = self._decode_all_instances(position)
        if not times[0] <= t <= times[-1]:
            return []
        results: list[TedWhereResult] = []
        for index, instance in enumerate(instances):
            if instance.probability < alpha:
                continue
            chain = InstanceChainage(self.network, instance)
            where = chain.position_at_time(times, t)
            if where is not None:
                results.append(
                    TedWhereResult(
                        trajectory_id,
                        index,
                        where.edge,
                        where.ndist,
                        instance.probability,
                    )
                )
        return results

    def when(
        self,
        trajectory_id: int,
        edge: EdgeKey,
        relative_distance: float,
        alpha: float,
    ) -> list[TedWhenResult]:
        """Probabilistic when query (Definition 11) on TED data."""
        trajectory = self.archive.trajectory(trajectory_id)
        position = self.archive.trajectories.index(trajectory)
        times, instances = self._decode_all_instances(position)
        edge_length = self.network.edge_length(*edge)
        ndist = relative_distance * edge_length
        tolerance = self.archive.eta_distance * edge_length + 1e-6
        results: list[TedWhenResult] = []
        for index, instance in enumerate(instances):
            if instance.probability < alpha:
                continue
            chain = InstanceChainage(self.network, instance)
            for passing in chain.times_at_position(
                times, edge, ndist, tolerance=tolerance
            ):
                results.append(
                    TedWhenResult(
                        trajectory_id, index, passing, instance.probability
                    )
                )
        return results

    def range(self, region: Rect, t: int, alpha: float) -> list[int]:
        """Probabilistic range query (Definition 12) on TED data."""
        results: list[int] = []
        for position in self._candidates(t):
            trajectory = self.archive.trajectories[position]
            if not trajectory.start_time <= t <= trajectory.end_time:
                continue
            times, instances = self._decode_all_instances(position)
            total = 0.0
            for instance in instances:
                chain = InstanceChainage(self.network, instance)
                where = chain.position_at_time(times, t)
                if where is None:
                    continue
                a = self.network.vertex(where.edge[0])
                b = self.network.vertex(where.edge[1])
                fraction = where.ndist / self.network.edge_length(*where.edge)
                x = a.x + (b.x - a.x) * fraction
                y = a.y + (b.y - a.y) * fraction
                if region.contains(x, y):
                    total += instance.probability
            if total >= alpha:
                results.append(trajectory.trajectory_id)
        return results
