"""TED's length-grouped matrix compression of edge sequences (§2.3).

TED's E-compression has three steps: fixed-width codes, grouping
trajectories by code length into ``A x B`` matrices, and a "multiple
bases-based compression ... based on the observation that the highest bit
of each code in the matrix has a high probability of being 0".

The TKDE paper's exact base algorithm is not reproduced in the PVLDB
paper; our reconstruction (DESIGN.md §2) keeps the properties the
evaluation depends on.  A *base* is a per-column width vector; each row is
stored under the cheapest base that fits all of its entries, so columns
dominated by small outgoing-edge numbers shed their high zero bits.
Bases are chosen by a greedy search that scores every candidate width
vector against **every row of the matrix** — the dataset-wide,
super-linear matrix work that makes TED's compression slow and
memory-hungry in the paper's Figures 6, 7, and 12 (all ``E`` codes must
be resident before any base can be chosen).

Each group falls back to plain fixed-width encoding when the base headers
outweigh the savings (a per-group mode flag).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bits import expgolomb
from ..bits.bitio import BitReader, BitWriter, uint_width

MAX_BASES = 8
MAX_CANDIDATES = 32


def width_vector(row: tuple[int, ...]) -> tuple[int, ...]:
    """Per-column bit widths needed by one row (minimum 1 bit)."""
    return tuple(value.bit_length() or 1 for value in row)


def _fits(row_widths: tuple[int, ...], base: tuple[int, ...]) -> bool:
    for row_width, base_width in zip(row_widths, base):
        if row_width > base_width:
            return False
    return True


def _row_cost(
    row_widths: tuple[int, ...], bases: list[tuple[int, ...]], index_bits: int
) -> int:
    """Cheapest encoding cost of a row under the current base set."""
    best = None
    for base in bases:
        if _fits(row_widths, base):
            cost = sum(base)
            if best is None or cost < best:
                best = cost
    if best is None:
        raise ValueError("no base fits the row (the max base must always fit)")
    return best + index_bits


@dataclass
class MatrixGroup:
    """All edge sequences of one length, as a code matrix."""

    entry_count: int  # B: number of columns
    rows: list[tuple[int, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        # cached (symbol_width, use_bases, bases) — the base search scores
        # candidates against the whole matrix, so one plan is computed per
        # (group contents, symbol_width) and reused by serialized_size()
        # and serialize()
        self._plan_cache: tuple[int, bool, list[tuple[int, ...]]] | None = None

    def add_row(self, entries: tuple[int, ...]) -> int:
        """Append a row; returns its row index."""
        if len(entries) != self.entry_count:
            raise ValueError(
                f"row has {len(entries)} entries, group expects {self.entry_count}"
            )
        self.rows.append(entries)
        self._plan_cache = None
        return len(self.rows) - 1

    # ------------------------------------------------------------------
    # multiple-bases selection
    # ------------------------------------------------------------------
    def select_bases(self, symbol_width: int) -> list[tuple[int, ...]]:
        """Greedy base search over the whole matrix, pruned.

        Starts from the always-fitting column-maximum vector and adds the
        candidate width vector with the largest total saving until no
        candidate helps or ``MAX_BASES`` is reached.  Equivalent to
        scoring every candidate against every row, but evaluated over
        *distinct* width vectors weighted by frequency, with each
        vector's cheapest-fitting-base sum maintained incrementally —
        candidate scoring is a delta against that envelope instead of a
        fresh rows x bases scan per round.  The chosen bases (and their
        order) are identical to the exhaustive search's.
        """
        row_width_vectors = [width_vector(row) for row in self.rows]
        maxima = tuple(
            min(max(widths[c] for widths in row_width_vectors), symbol_width)
            for c in range(self.entry_count)
        )
        bases: list[tuple[int, ...]] = [maxima]

        frequency: dict[tuple[int, ...], int] = {}
        for widths in row_width_vectors:
            frequency[widths] = frequency.get(widths, 0) + 1
        candidates = sorted(
            frequency, key=lambda w: -frequency[w]
        )[:MAX_CANDIDATES]

        row_count = len(row_width_vectors)
        # cheapest fitting-base width sum per distinct row width vector
        # (the column-maximum base fits everything by construction)
        best_sum = dict.fromkeys(frequency, sum(maxima))
        header_extra = self.entry_count * uint_width(symbol_width)
        # which distinct vectors each candidate can host, computed once —
        # the greedy rounds below only compare width sums
        fit_lists = {
            candidate: (
                sum(candidate),
                [
                    (widths, count)
                    for widths, count in frequency.items()
                    if _fits(widths, candidate)
                ],
            )
            for candidate in candidates
        }

        while len(bases) < MAX_BASES:
            index_bits = uint_width(len(bases))  # one more base changes it
            current_cost = (
                sum(
                    best_sum[widths] * count
                    for widths, count in frequency.items()
                )
                + index_bits * row_count
            )
            best_candidate = None
            best_cost = current_cost
            for candidate in candidates:
                if candidate in bases:
                    continue
                candidate_sum, fitting = fit_lists[candidate]
                trial_cost = current_cost + header_extra
                for widths, count in fitting:
                    saving = best_sum[widths] - candidate_sum
                    if saving > 0:
                        trial_cost -= saving * count
                if trial_cost < best_cost:
                    best_cost = trial_cost
                    best_candidate = candidate
            if best_candidate is None:
                break
            bases.append(best_candidate)
            candidate_sum, fitting = fit_lists[best_candidate]
            for widths, _count in fitting:
                if candidate_sum < best_sum[widths]:
                    best_sum[widths] = candidate_sum
        return bases

    def _encoding_plan(
        self, symbol_width: int
    ) -> tuple[bool, list[tuple[int, ...]], list[int]]:
        """Decide plain vs multiple-bases mode.

        Returns ``(use_bases, bases, base_index_per_row)``; the per-row
        base choice is computed once per distinct width vector and cached
        with the plan so :meth:`serialize` and :meth:`serialized_size`
        never re-run the search.
        """
        cached = self._plan_cache
        if cached is not None and cached[0] == symbol_width:
            return cached[1], cached[2], cached[3]
        bases = self.select_bases(symbol_width)
        width_field = uint_width(symbol_width)
        index_bits = uint_width(len(bases) - 1)
        header = (
            expgolomb.encoded_length(len(bases))
            + len(bases) * self.entry_count * width_field
        )
        # (base index, row cost) per distinct width vector, matching
        # _best_base_index_and_cost (first base with the smallest cost)
        choice: dict[tuple[int, ...], tuple[int, int]] = {}
        base_index_per_row: list[int] = []
        based_cost = header
        for row in self.rows:
            widths = width_vector(row)
            chosen = choice.get(widths)
            if chosen is None:
                chosen = self._best_base_index_and_cost(row, bases, index_bits)
                choice[widths] = chosen
            base_index_per_row.append(chosen[0])
            based_cost += chosen[1]
        plain_cost = len(self.rows) * self.entry_count * symbol_width
        plan = (based_cost < plain_cost, bases, base_index_per_row)
        self._plan_cache = (symbol_width, *plan)
        return plan

    @staticmethod
    def _best_base_index_and_cost(
        row: tuple[int, ...],
        bases: list[tuple[int, ...]],
        index_bits: int,
    ) -> tuple[int, int]:
        widths = width_vector(row)
        best_index, best_cost = None, None
        for index, base in enumerate(bases):
            if _fits(widths, base):
                cost = index_bits + sum(base)
                if best_cost is None or cost < best_cost:
                    best_index, best_cost = index, cost
        if best_index is None:
            raise ValueError("no base fits the row")
        return best_index, best_cost

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def serialize(self, writer: BitWriter, symbol_width: int) -> None:
        """Write the group: header, mode flag, bases, and all rows."""
        expgolomb.encode_unsigned(writer, self.entry_count)
        expgolomb.encode_unsigned(writer, len(self.rows))
        use_bases, bases, base_index_per_row = self._encoding_plan(
            symbol_width
        )
        writer.write_bit(1 if use_bases else 0)
        if not use_bases:
            for row in self.rows:
                for value in row:
                    writer.write_uint(value, symbol_width)
            return
        width_field = uint_width(symbol_width)
        expgolomb.encode_unsigned(writer, len(bases))
        for base in bases:
            for width in base:
                writer.write_uint(width, width_field)
        index_bits = uint_width(len(bases) - 1)
        for row, base_index in zip(self.rows, base_index_per_row):
            writer.write_uint(base_index, index_bits)
            for value, width in zip(row, bases[base_index]):
                writer.write_uint(value, width)

    @classmethod
    def deserialize(cls, reader: BitReader, symbol_width: int) -> "MatrixGroup":
        entry_count = expgolomb.decode_unsigned(reader)
        row_count = expgolomb.decode_unsigned(reader)
        use_bases = reader.read_bit() == 1
        group = cls(entry_count)
        if not use_bases:
            for _ in range(row_count):
                group.rows.append(
                    tuple(
                        reader.read_uint(symbol_width)
                        for _ in range(entry_count)
                    )
                )
            return group
        width_field = uint_width(symbol_width)
        base_count = expgolomb.decode_unsigned(reader)
        bases = [
            tuple(reader.read_uint(width_field) for _ in range(entry_count))
            for _ in range(base_count)
        ]
        index_bits = uint_width(base_count - 1)
        for _ in range(row_count):
            base = bases[reader.read_uint(index_bits)]
            group.rows.append(
                tuple(reader.read_uint(width) for width in base)
            )
        return group

    def serialized_size(self, symbol_width: int) -> int:
        writer = BitWriter()
        self.serialize(writer, symbol_width)
        return len(writer)


class MatrixStore:
    """All matrix groups of a TED archive, keyed by sequence length.

    This is the memory hog the paper measures: TED "has to load all the
    E(.) for the preparation of matrix transformation and partitioning".
    """

    def __init__(self, symbol_width: int) -> None:
        self.symbol_width = symbol_width
        self.groups: dict[int, MatrixGroup] = {}

    def add_sequence(self, entries: tuple[int, ...]) -> tuple[int, int]:
        """Store one edge sequence; returns ``(group_key, row_index)``."""
        group = self.groups.setdefault(len(entries), MatrixGroup(len(entries)))
        return len(entries), group.add_row(entries)

    def sequence(self, group_key: int, row_index: int) -> tuple[int, ...]:
        return self.groups[group_key].rows[row_index]

    def serialized_size(self) -> int:
        """Total serialized bits over all groups (exact, by serializing)."""
        return sum(
            group.serialized_size(self.symbol_width)
            for group in self.groups.values()
        )

    def serialize(self, writer: BitWriter) -> None:
        expgolomb.encode_unsigned(writer, len(self.groups))
        for key in sorted(self.groups):
            self.groups[key].serialize(writer, self.symbol_width)

    @classmethod
    def deserialize(cls, reader: BitReader, symbol_width: int) -> "MatrixStore":
        store = cls(symbol_width)
        group_count = expgolomb.decode_unsigned(reader)
        for _ in range(group_count):
            group = MatrixGroup.deserialize(reader, symbol_width)
            store.groups[group.entry_count] = group
        return store
