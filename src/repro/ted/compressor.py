"""The TED baseline adapted to uncertain trajectories (§6.1).

"As this is the first study on the compression of uncertain trajectories,
we adapt the state-of-the-art work for the compression of accurate
trajectories, i.e., the TED framework, to compress each uncertain
trajectory instance while using the same [PDDP scheme] to compress
probability as our UTCQ.  We omit bitmap compression, as it is time
consuming and it is also applicable to UTCQ."

Per instance TED stores: the 32-bit start vertex, the edge sequence via
the dataset-wide matrix store (fixed-width codes, length-grouped
matrices, per-column width reduction), the *untrimmed* time-flag
bit-string raw (ratio 1, matching Table 8's TED T' column), PDDP
distances, and a PDDP probability.  The shared time sequence uses TED's
boundary-pair codec once per uncertain trajectory (the fair adaptation —
duplicating it per instance would only worsen TED).

Unlike UTCQ's one-trajectory-at-a-time streaming, TED buffers every edge
sequence before it can form matrices — the source of its memory
footprint in Fig. 6/7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bits import bitmap, expgolomb
from ..bits.bitio import BitReader, BitWriter, uint_width
from ..network.graph import RoadNetwork
from ..trajectories.model import TrajectoryInstance, UncertainTrajectory
from ..core.archive import CompressionStats
from ..core.encoder import START_VERTEX_BITS
from ..core.improved_ted import InstanceTuple, decode_instance, encode_instance
from ..core.pddp import (
    PddpDecoder,
    PddpEncoder,
    decode_fraction,
    encode_fraction,
    max_code_length,
)
from . import time_codec
from .matrix import MatrixStore


@dataclass
class TedInstance:
    """One TED-compressed instance."""

    start_vertex: int
    group_key: int
    row_index: int
    payload: bytes  # T' + D + p stream
    payload_bits: int
    flags_bits: int
    distance_bits: int
    probability_bits: int
    probability: float  # decoded, for query processing
    point_count: int


@dataclass
class TedTrajectory:
    """One uncertain trajectory in a TED archive."""

    trajectory_id: int
    time_payload: bytes
    time_payload_bits: int
    point_count: int
    start_time: int
    end_time: int
    instances: list[TedInstance]


@dataclass
class TedArchive:
    """The TED baseline's compressed output."""

    eta_distance: float
    eta_probability: float
    symbol_width: int
    time_bits: int
    matrix_store: MatrixStore
    trajectories: list[TedTrajectory]
    stats: CompressionStats = field(default_factory=CompressionStats)
    use_bitmap: bool = False

    @property
    def trajectory_count(self) -> int:
        return len(self.trajectories)

    def trajectory(self, trajectory_id: int) -> TedTrajectory:
        for candidate in self.trajectories:
            if candidate.trajectory_id == trajectory_id:
                return candidate
        raise KeyError(f"no trajectory {trajectory_id} in the archive")


@dataclass
class TEDCompressor:
    """The baseline compressor (per-instance TED + shared-time adaptation)."""

    network: RoadNetwork
    default_interval: int  # unused by TED's codec; kept for a uniform API
    eta_distance: float = 1 / 128
    eta_probability: float = 1 / 512
    use_bitmap: bool = False  # the paper's comparison omits it

    def compress(self, trajectories: list[UncertainTrajectory]) -> TedArchive:
        symbol_width = uint_width(self.network.max_out_degree)
        max_time = max((t.end_time for t in trajectories), default=0)
        time_bits = max(17, uint_width(max_time))
        # Step 1 (the memory-heavy part): collect *all* edge sequences.
        store = MatrixStore(symbol_width)
        stats = CompressionStats()
        compressed: list[TedTrajectory] = []
        for trajectory in trajectories:
            compressed.append(
                self._compress_trajectory(
                    trajectory, store, stats, symbol_width, time_bits
                )
            )
        # Step 2: matrix (multiple-bases) compression over the whole store.
        stats.compressed.edge += store.serialized_size()
        archive = TedArchive(
            eta_distance=self.eta_distance,
            eta_probability=self.eta_probability,
            symbol_width=symbol_width,
            time_bits=time_bits,
            matrix_store=store,
            trajectories=compressed,
            stats=stats,
            use_bitmap=self.use_bitmap,
        )
        return archive

    def _compress_trajectory(
        self,
        trajectory: UncertainTrajectory,
        store: MatrixStore,
        stats: CompressionStats,
        symbol_width: int,
        time_bits: int,
    ) -> TedTrajectory:
        times = list(trajectory.times)
        time_writer = BitWriter()
        time_codec.encode(time_writer, times, time_bits=time_bits)
        stats.compressed.time += len(time_writer)
        stats.original.time += 32 * len(times)

        instances: list[TedInstance] = []
        for instance in trajectory.instances:
            encoded = encode_instance(self.network, instance)
            instances.append(
                self._compress_instance(encoded, store, stats)
            )
        stats.compressed.overhead += expgolomb.encoded_length(
            len(trajectory.instances)
        )
        return TedTrajectory(
            trajectory_id=trajectory.trajectory_id,
            time_payload=time_writer.getvalue(),
            time_payload_bits=len(time_writer),
            point_count=len(times),
            start_time=times[0],
            end_time=times[-1],
            instances=instances,
        )

    def _compress_instance(
        self,
        encoded: InstanceTuple,
        store: MatrixStore,
        stats: CompressionStats,
    ) -> TedInstance:
        group_key, row_index = store.add_sequence(encoded.edge_numbers)
        # start vertex + per-instance share of the matrix store accrues to E;
        # the matrix bits themselves are added archive-wide after grouping.
        stats.compressed.edge += START_VERTEX_BITS
        stats.original.edge += 32 * (len(encoded.edge_numbers) + 1)

        writer = BitWriter()
        if self.use_bitmap:
            bitmap_writer = bitmap.compress(list(encoded.time_flags))
            writer.extend(bitmap_writer)
        else:
            writer.write_bits(encoded.time_flags)  # untrimmed, raw: ratio 1
        flags_bits = len(writer)
        stats.compressed.flags += flags_bits
        stats.original.flags += len(encoded.time_flags)

        pddp = PddpEncoder(self.eta_distance)
        pddp.add_all(list(encoded.relative_distances))
        pddp.serialize(writer)
        distance_bits = len(writer) - flags_bits
        stats.compressed.distance += distance_bits
        stats.original.distance += 32 * len(encoded.relative_distances)

        probability_offset = len(writer)
        code = encode_fraction(encoded.probability, self.eta_probability)
        writer.write_uint(
            len(code), uint_width(max_code_length(self.eta_probability))
        )
        writer.write_bits(code)
        probability_bits = len(writer) - probability_offset
        stats.compressed.probability += probability_bits
        stats.original.probability += 32

        return TedInstance(
            start_vertex=encoded.start_vertex,
            group_key=group_key,
            row_index=row_index,
            payload=writer.getvalue(),
            payload_bits=len(writer),
            flags_bits=flags_bits,
            distance_bits=distance_bits,
            probability_bits=probability_bits,
            probability=decode_fraction(code),
            point_count=encoded.point_count,
        )


def decode_ted_times(archive: TedArchive, trajectory: TedTrajectory) -> list[int]:
    """Decode a trajectory's shared time sequence."""
    reader = BitReader(trajectory.time_payload, trajectory.time_payload_bits)
    return time_codec.decode(reader, time_bits=archive.time_bits)


def decode_ted_instance_tuple(
    archive: TedArchive, instance: TedInstance
) -> InstanceTuple:
    """Decode one TED instance back to an improved-TED tuple."""
    entries = archive.matrix_store.sequence(
        instance.group_key, instance.row_index
    )
    reader = BitReader(instance.payload, instance.payload_bits)
    if archive.use_bitmap:
        flags = tuple(bitmap.decompress(reader))
    else:
        flags = tuple(reader.read_bits(len(entries)))
    distances = tuple(PddpDecoder(reader, archive.eta_distance).values)
    code_length = reader.read_uint(
        uint_width(max_code_length(archive.eta_probability))
    )
    probability = decode_fraction(reader.read_bits(code_length))
    return InstanceTuple(
        start_vertex=instance.start_vertex,
        edge_numbers=entries,
        relative_distances=distances,
        time_flags=flags,
        probability=probability,
    )


def decode_ted_trajectory(
    network: RoadNetwork, archive: TedArchive, trajectory: TedTrajectory
) -> UncertainTrajectory:
    """Fully decode one trajectory from a TED archive."""
    times = decode_ted_times(archive, trajectory)
    instances: list[TrajectoryInstance] = []
    total = 0.0
    for compressed in trajectory.instances:
        encoded = decode_ted_instance_tuple(archive, compressed)
        instances.append(decode_instance(network, encoded))
        total += encoded.probability
    if total > 0:
        for instance in instances:
            instance.probability /= total
    return UncertainTrajectory(trajectory.trajectory_id, instances, times)
