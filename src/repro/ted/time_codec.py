"""TED's time-sequence compression: boundary pairs of constant-interval runs.

TED (§2.2) "omits the consecutive timestamps with unchanged sample
intervals": ``<t_i, t_{i+1}, t_{i+2}>`` becomes ``<(i, t_i), (i+2,
t_{i+2})>`` when the two intervals are equal.  A kept pair costs
``index_bits + time_bits`` (the paper assumes at most 2^12 timestamps per
trajectory and 17-bit times, hence 12 + 17 = 29 bits per pair).

The codec is lossless: intermediate timestamps are linear between the
kept endpoints of each run.  Its weakness — the paper's motivation for
SIAR — is that real sample intervals change every few samples, so almost
every timestamp becomes a boundary.
"""

from __future__ import annotations

from ..bits import expgolomb
from ..bits.bitio import BitReader, BitWriter

DEFAULT_INDEX_BITS = 12  # paper: trajectories have at most 2^12 timestamps


def boundary_pairs(times: list[int]) -> list[tuple[int, int]]:
    """The kept ``(index, timestamp)`` pairs for ``times``."""
    if not times:
        raise ValueError("cannot compress an empty time sequence")
    n = len(times)
    if n == 1:
        return [(0, times[0])]
    kept = [(0, times[0])]
    run_start = 0
    for i in range(2, n):
        if times[i] - times[i - 1] != times[i - 1] - times[i - 2]:
            if run_start != i - 1:
                kept.append((i - 1, times[i - 1]))
            run_start = i - 1
    kept.append((n - 1, times[n - 1]))
    return kept


def restore_from_pairs(pairs: list[tuple[int, int]]) -> list[int]:
    """Reconstruct the full time sequence from boundary pairs."""
    if not pairs:
        raise ValueError("cannot restore from zero pairs")
    times: list[int] = []
    for (i0, t0), (i1, t1) in zip(pairs, pairs[1:]):
        span = i1 - i0
        if span <= 0:
            raise ValueError("pair indices must strictly increase")
        if (t1 - t0) % span != 0:
            raise ValueError(
                f"non-integral interval between pairs ({i0},{t0}) and ({i1},{t1})"
            )
        step = (t1 - t0) // span
        for k in range(span):
            times.append(t0 + k * step)
    times.append(pairs[-1][1])
    return times


def encode(
    writer: BitWriter,
    times: list[int],
    *,
    index_bits: int = DEFAULT_INDEX_BITS,
    time_bits: int = 17,
) -> int:
    """Serialize ``times`` as boundary pairs; returns the pair count."""
    pairs = boundary_pairs(times)
    if len(times) > (1 << index_bits):
        raise ValueError(
            f"{len(times)} timestamps exceed the {index_bits}-bit index space"
        )
    if any(t >= (1 << time_bits) for _, t in pairs):
        raise ValueError(f"timestamp does not fit in {time_bits} bits")
    expgolomb.encode_unsigned(writer, len(pairs))
    for index, timestamp in pairs:
        writer.write_uint(index, index_bits)
        writer.write_uint(timestamp, time_bits)
    return len(pairs)


def decode(
    reader: BitReader,
    *,
    index_bits: int = DEFAULT_INDEX_BITS,
    time_bits: int = 17,
) -> list[int]:
    """Inverse of :func:`encode`."""
    count = expgolomb.decode_unsigned(reader)
    pairs = [
        (reader.read_uint(index_bits), reader.read_uint(time_bits))
        for _ in range(count)
    ]
    return restore_from_pairs(pairs)


def encoded_size_bits(
    times: list[int],
    *,
    index_bits: int = DEFAULT_INDEX_BITS,
    time_bits: int = 17,
) -> int:
    """Serialized size without materializing the stream."""
    pairs = boundary_pairs(times)
    return expgolomb.encoded_length(len(pairs)) + len(pairs) * (
        index_bits + time_bits
    )
