"""The TED baseline (Yang et al., TKDE 2017) adapted to uncertain data."""

from .compressor import (
    TEDCompressor,
    TedArchive,
    TedInstance,
    TedTrajectory,
    decode_ted_instance_tuple,
    decode_ted_times,
    decode_ted_trajectory,
)
from .index import TedQueryIndex, TedWhenResult, TedWhereResult
from .matrix import MatrixGroup, MatrixStore

__all__ = [
    "TEDCompressor",
    "TedArchive",
    "TedInstance",
    "TedTrajectory",
    "decode_ted_instance_tuple",
    "decode_ted_times",
    "decode_ted_trajectory",
    "TedQueryIndex",
    "TedWhenResult",
    "TedWhereResult",
    "MatrixGroup",
    "MatrixStore",
]
