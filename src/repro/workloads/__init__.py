"""Evaluation harness: measured runs, query workloads, and reporting."""

from .harness import (
    CompressionRun,
    QueryTimings,
    QueryWorkload,
    build_query_workload,
    run_ted_compression,
    run_utcq_compression,
    time_ted_queries,
    time_utcq_queries,
)
from .reporting import (
    EXPERIMENT_LOG,
    ExperimentLog,
    ExperimentTable,
    render_table,
)

__all__ = [
    "CompressionRun",
    "QueryTimings",
    "QueryWorkload",
    "build_query_workload",
    "run_ted_compression",
    "run_utcq_compression",
    "time_ted_queries",
    "time_utcq_queries",
    "EXPERIMENT_LOG",
    "ExperimentLog",
    "ExperimentTable",
    "render_table",
]
