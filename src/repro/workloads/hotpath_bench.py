"""Microbenchmarks of the library's hot paths (`repro bench`).

Four layers dominate end-to-end wall time: bit-level I/O (every codec),
the map-matching HMM (every ingested point), TED's matrix base search
(the baseline compressor), and StIU-backed queries.  This module times
each one on a fixed, seeded workload so numbers are comparable across
runs and across PRs, plus an end-to-end compression throughput row —
the trajectory the `BENCH_core_hotpaths.json` file at the repo root
tracks.

The workloads are deterministic (fixed seeds, fixed sizes per mode), so
two runs on the same machine differ only by the code under test; the
CLI's ``--append`` mode accumulates labelled runs into one JSON document
to record before/after pairs.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass

from ..bits import expgolomb
from ..bits.bitio import BitReader, BitWriter
from ..core.compressor import UTCQCompressor
from ..ted.matrix import MatrixGroup
from ..trajectories.datasets import load_dataset, profile
from .reporting import ExperimentLog, merge_rows

BENCH_TABLE_TITLE = "core_hotpaths"
BENCH_HEADERS = ("label", "benchmark", "unit", "work", "seconds", "rate")
DEFAULT_OUTPUT = "BENCH_core_hotpaths.json"


@dataclass(frozen=True)
class BenchResult:
    """One measured hot path: ``rate = work / seconds`` in ``unit``."""

    name: str
    unit: str
    work: int
    seconds: float

    @property
    def rate(self) -> float:
        return self.work / self.seconds if self.seconds > 0 else float("inf")

    def row(self, label: str) -> list:
        return [
            label,
            self.name,
            self.unit,
            self.work,
            round(self.seconds, 4),
            round(self.rate, 1),
        ]


# ----------------------------------------------------------------------
# individual benchmarks
# ----------------------------------------------------------------------
def bench_bit_io(*, quick: bool = False) -> BenchResult:
    """Codec-shaped bit I/O: Exp-Golomb, fixed-width fields, flag runs.

    One "op" is one value written or read; the mix mirrors what the
    SIAR/factor/PDDP encoders actually do.
    """
    scale = 1 if quick else 10
    rng = random.Random(97)
    deviations = [
        rng.choice((-2, -1, -1, 0, 0, 0, 0, 1, 1, 2, 5, -9))
        for _ in range(2_000 * scale)
    ]
    uints = [
        (rng.randrange(1 << width), width)
        for width in (3, 7, 12, 17)
        for _ in range(500 * scale)
    ]
    flag_streams = [
        [rng.randrange(2) for _ in range(64)] for _ in range(50 * scale)
    ]
    ops = 0
    started = time.perf_counter()
    writer = BitWriter()
    for deviation in deviations:
        expgolomb.encode(writer, deviation)
    ops += len(deviations)
    for value, width in uints:
        writer.write_uint(value, width)
    ops += len(uints)
    for stream in flag_streams:
        writer.write_bits(stream)
    ops += sum(len(stream) for stream in flag_streams)
    reader = BitReader.from_writer(writer)
    for _ in deviations:
        expgolomb.decode(reader)
    ops += len(deviations)
    for _, width in uints:
        reader.read_uint(width)
    ops += len(uints)
    for stream in flag_streams:
        reader.read_bits(len(stream))
    ops += sum(len(stream) for stream in flag_streams)
    elapsed = time.perf_counter() - started
    return BenchResult("bit_io", "ops/s", ops, elapsed)


def bench_map_matching(*, quick: bool = False) -> BenchResult:
    """Batch HMM matching of a noisy synthetic fleet, in points/sec."""
    from ..mapmatching.hmm import ProbabilisticMapMatcher
    from ..mapmatching.noise import synthesize_raw_dataset
    from ..network.generators import dataset_network

    vehicles = 4 if quick else 40
    prof = profile("CD")
    network = dataset_network("CD", scale=12, seed=7)
    raws = synthesize_raw_dataset(
        network, prof.generation_config(), vehicles, seed=7
    )
    matcher = ProbabilisticMapMatcher(network)
    points = sum(len(raw) for raw in raws)
    started = time.perf_counter()
    matched = matcher.match_many(raws)
    elapsed = time.perf_counter() - started
    assert matched, "map-matching benchmark produced no trajectories"
    return BenchResult("map_matching", "points/s", points, elapsed)


def bench_ted_rows(*, quick: bool = False) -> BenchResult:
    """TED matrix base search + serialization, in rows/sec.

    Row values are skewed toward small outgoing-edge numbers (the
    distribution the multiple-bases observation relies on).
    """
    row_count = 60 if quick else 600
    symbol_width = 5
    rng = random.Random(41)
    group = MatrixGroup(entry_count=12)
    for _ in range(row_count):
        group.add_row(
            tuple(
                rng.choice((0, 0, 1, 1, 1, 2, 3, 6, 14, 29))
                for _ in range(group.entry_count)
            )
        )
    started = time.perf_counter()
    writer = BitWriter()
    group.serialize(writer, symbol_width)
    elapsed = time.perf_counter() - started
    reader = BitReader.from_writer(writer)
    decoded = MatrixGroup.deserialize(reader, symbol_width)
    assert decoded.rows == group.rows, "TED matrix round trip failed"
    return BenchResult("ted_base_search", "rows/s", row_count, elapsed)


def bench_compression_suite(*, quick: bool = False) -> list[BenchResult]:
    """End-to-end compression throughput, mirroring the Table 8 workload.

    Runs both compressors on the same dataset (what
    ``benchmarks/bench_table8_compression.py`` exercises) and reports the
    combined throughput plus the per-method split — the TED baseline's
    matrix base search historically dominates the combined number.
    """
    from ..ted.compressor import TEDCompressor

    count = 12 if quick else 300
    prof = profile("CD")
    network, trajectories = load_dataset(
        "CD", count, seed=7, network_scale=14
    )
    utcq = UTCQCompressor(
        network=network,
        default_interval=prof.default_interval,
        eta_probability=prof.default_eta_probability,
    )
    started = time.perf_counter()
    archive = utcq.compress(trajectories)
    utcq_elapsed = time.perf_counter() - started
    assert archive.trajectories, "compression benchmark produced no output"

    ted = TEDCompressor(
        network=network,
        default_interval=prof.default_interval,
        eta_probability=prof.default_eta_probability,
    )
    started = time.perf_counter()
    ted.compress(trajectories)
    ted_elapsed = time.perf_counter() - started

    return [
        BenchResult(
            "compression", "traj/s", 2 * count, utcq_elapsed + ted_elapsed
        ),
        BenchResult("utcq_compression", "traj/s", count, utcq_elapsed),
        BenchResult("ted_compression", "traj/s", count, ted_elapsed),
    ]


def bench_stiu_queries(*, quick: bool = False) -> BenchResult:
    """StIU-backed where/when/range queries, in queries/sec."""
    from ..query.queries import UTCQQueryProcessor
    from ..query.stiu import StIUIndex
    from .harness import build_query_workload

    count = 10 if quick else 40
    per_kind = 8 if quick else 60
    prof = profile("CD")
    network, trajectories = load_dataset(
        "CD", count, seed=7, network_scale=12
    )
    compressor = UTCQCompressor(
        network=network,
        default_interval=prof.default_interval,
        eta_probability=prof.default_eta_probability,
    )
    archive = compressor.compress(trajectories)
    index = StIUIndex(network, archive)
    processor = UTCQQueryProcessor(network, archive, index)
    workload = build_query_workload(
        network, trajectories, count=per_kind, seed=5
    )
    queries = (
        len(workload.where_queries)
        + len(workload.when_queries)
        + len(workload.range_queries)
    )
    started = time.perf_counter()
    for trajectory_id, t, alpha in workload.where_queries:
        processor.where(trajectory_id, t, alpha)
    for trajectory_id, edge, rd, alpha in workload.when_queries:
        processor.when(trajectory_id, edge, rd, alpha)
    for region, t, alpha in workload.range_queries:
        processor.range(region, t, alpha)
    elapsed = time.perf_counter() - started
    return BenchResult("stiu_queries", "queries/s", queries, elapsed)


# ----------------------------------------------------------------------
# suite driver + JSON trajectory file
# ----------------------------------------------------------------------
def run_hotpath_bench(
    *, quick: bool = False, repeats: int | None = None
) -> list[BenchResult]:
    """Run every hot-path benchmark; returns the results in fixed order.

    Workloads are deterministic, so each benchmark runs ``repeats``
    times (default 3, 1 in quick mode) and the fastest sample wins —
    the standard noise estimator for fixed-work microbenchmarks.
    """
    if repeats is None:
        repeats = 1 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    suites = (
        bench_bit_io,
        bench_map_matching,
        bench_ted_rows,
        bench_compression_suite,
        bench_stiu_queries,
    )
    order: list[str] = []
    best: dict[str, BenchResult] = {}
    for _ in range(repeats):
        for suite in suites:
            outcome = suite(quick=quick)
            for result in outcome if isinstance(outcome, list) else [outcome]:
                incumbent = best.get(result.name)
                if incumbent is None:
                    order.append(result.name)
                    best[result.name] = result
                elif result.seconds < incumbent.seconds:
                    best[result.name] = result
    return [best[name] for name in order]


def load_existing_rows(path) -> list[list]:
    """Rows of the ``core_hotpaths`` table in an existing results file.

    Returns ``[]`` when the file is missing or not a repro-bench document
    (so ``--append`` is safe on a fresh checkout).
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            document = json.load(stream)
    except (OSError, ValueError):
        return []
    if document.get("format") != "repro-bench":
        return []
    for table in document.get("tables", ()):
        if table.get("title") == BENCH_TABLE_TITLE:
            return [list(row) for row in table.get("rows", ())]
    return []


def write_bench_json(
    results: list[BenchResult],
    path,
    *,
    label: str = "current",
    append: bool = False,
) -> list[list]:
    """Write (or extend) the perf-trajectory JSON document at ``path``.

    With ``append``, rows from an existing repro-bench document are kept
    and the new labelled rows added after them — how one file accumulates
    a before/after history across PRs.  Re-measured ``(label,
    benchmark)`` keys replace their old rows instead of duplicating
    them.  Returns all rows written.
    """
    fresh = [result.row(label) for result in results]
    rows = (
        merge_rows(load_existing_rows(path), fresh) if append else fresh
    )
    log = ExperimentLog()
    log.record(BENCH_TABLE_TITLE, BENCH_HEADERS, rows)
    log.write_json(path)
    return rows
