"""Table/series rendering for paper-style experiment output.

Each benchmark prints the rows the paper's tables and figures report.
``render_table`` produces plain-text tables; ``ExperimentLog`` gathers
them — structurally, not as rendered text — so a pytest
terminal-summary hook can echo everything at the end of a benchmark
session *and* dump the same runs machine-readably
(:meth:`ExperimentLog.write_json`), which is how the ``BENCH_*.json``
files under ``benchmarks/results/`` track the perf trajectory over
time.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Render one fixed-width table."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows), 3)
        if text_rows
        else max(len(str(headers[i])), 3)
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _json_safe(value):
    """JSON has no Infinity/NaN tokens; map non-finite floats to None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


@dataclass(frozen=True)
class ExperimentTable:
    """One recorded experiment: a title, column headers, and data rows."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]

    def render(self) -> str:
        return render_table(self.title, list(self.headers), [list(r) for r in self.rows])

    def as_dict(self) -> dict:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_json_safe(cell) for cell in row] for row in self.rows],
        }


@dataclass
class ExperimentLog:
    """Accumulates experiment tables across a benchmark session."""

    tables: list[ExperimentTable] = field(default_factory=list)

    def record(
        self, title: str, headers: Sequence[str], rows: Sequence[Sequence]
    ) -> str:
        """Record one table; returns its plain-text rendering."""
        table = ExperimentTable(
            title, tuple(headers), tuple(tuple(row) for row in rows)
        )
        self.tables.append(table)
        return table.render()

    def dump(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)

    def write_json(self, path) -> None:
        """Dump every recorded run machine-readably to ``path``.

        The document is ``{"format": "repro-bench", "version": 1,
        "tables": [{title, headers, rows}, ...]}``; non-finite floats
        become ``null`` so the output is strict JSON.
        """
        document = {
            "format": "repro-bench",
            "version": 1,
            "tables": [table.as_dict() for table in self.tables],
        }
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(document, stream, indent=2)
            stream.write("\n")

    def clear(self) -> None:
        self.tables.clear()


def merge_rows(
    existing: Sequence[Sequence],
    fresh: Sequence[Sequence],
    *,
    key_columns: int = 2,
) -> list[list]:
    """Merge bench rows, replacing same-key rows instead of duplicating.

    The key is the first ``key_columns`` cells — ``(label, benchmark)``
    for the perf-trajectory tables — so re-running a bench with an
    existing label updates its rows in place rather than accreting a
    second copy.  Existing rows whose key is not re-measured are kept
    (in order); fresh rows land at the end, in their own order.
    """
    fresh_keys = {tuple(row[:key_columns]) for row in fresh}
    merged = [
        list(row)
        for row in existing
        if tuple(row[:key_columns]) not in fresh_keys
    ]
    merged.extend(list(row) for row in fresh)
    return merged


def merge_tables(existing: list[dict], fresh: list[dict]) -> list[dict]:
    """Merge ``{title, headers, rows}`` table dicts for a results file.

    Same-title tables whose headers agree and lead with ``(label,
    benchmark)`` columns are merged row-wise via :func:`merge_rows`;
    same-title tables with any other shape are replaced outright (the
    old whole-table semantics).  Tables unique to either side survive.
    """
    fresh_by_title = {table.get("title"): table for table in fresh}
    merged = []
    consumed = set()
    for table in existing:
        title = table.get("title")
        replacement = fresh_by_title.get(title)
        if replacement is None:
            merged.append(table)
            continue
        consumed.add(title)
        headers = list(replacement.get("headers", ()))
        if (
            list(table.get("headers", ())) == headers
            and headers[:2] == ["label", "benchmark"]
        ):
            merged.append(
                {
                    "title": title,
                    "headers": headers,
                    "rows": merge_rows(
                        table.get("rows", ()), replacement.get("rows", ())
                    ),
                }
            )
        else:
            merged.append(replacement)
    merged.extend(
        table for table in fresh if table.get("title") not in consumed
    )
    return merged


#: process-wide log the benchmark conftest hooks into
EXPERIMENT_LOG = ExperimentLog()
