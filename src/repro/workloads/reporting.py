"""Table/series rendering for paper-style experiment output.

Each benchmark prints the rows the paper's tables and figures report.
``render_table`` produces plain-text tables; ``ExperimentLog`` gathers
them so a pytest terminal-summary hook can echo everything at the end of
a benchmark session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Render one fixed-width table."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows), 3)
        if text_rows
        else max(len(str(headers[i])), 3)
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentLog:
    """Accumulates rendered tables across a benchmark session."""

    tables: list[str] = field(default_factory=list)

    def record(
        self, title: str, headers: Sequence[str], rows: Sequence[Sequence]
    ) -> str:
        table = render_table(title, headers, rows)
        self.tables.append(table)
        return table

    def dump(self) -> str:
        return "\n\n".join(self.tables)

    def clear(self) -> None:
        self.tables.clear()


#: process-wide log the benchmark conftest hooks into
EXPERIMENT_LOG = ExperimentLog()
