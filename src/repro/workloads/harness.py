"""Experiment harness: timed, memory-profiled compression & query runs.

Wraps the two compressors and the two query stacks with the
measurements §6 reports: compression ratio per component, wall-clock
compression time, peak memory (tracemalloc), index sizes, and query
latencies.  Every benchmark module drives experiments through this
harness so the printed tables share one code path.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field

from ..core.archive import CompressionStats
from ..core.compressor import UTCQCompressor
from ..network.graph import RoadNetwork
from ..ted.compressor import TEDCompressor
from ..trajectories.datasets import DatasetProfile
from ..trajectories.model import UncertainTrajectory


@dataclass
class CompressionRun:
    """Measurements of one compression run."""

    method: str
    stats: CompressionStats
    seconds: float
    peak_memory_bytes: int
    archive: object = field(repr=False, default=None)

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / (1024 * 1024)

    def ratio_row(self) -> dict[str, float]:
        return self.stats.as_row()


def _measure(callable_, *args, **kwargs):
    tracemalloc.start()
    started = time.perf_counter()
    result = callable_(*args, **kwargs)
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def run_utcq_compression(
    network: RoadNetwork,
    trajectories: list[UncertainTrajectory],
    profile: DatasetProfile,
    *,
    pivot_count: int = 1,
    eta_distance: float = 1 / 128,
    eta_probability: float | None = None,
    seed: int = 17,
) -> CompressionRun:
    """Compress with UTCQ under profile defaults; measure time and memory."""
    compressor = UTCQCompressor(
        network=network,
        default_interval=profile.default_interval,
        eta_distance=eta_distance,
        eta_probability=eta_probability or profile.default_eta_probability,
        pivot_count=pivot_count,
        seed=seed,
    )
    archive, elapsed, peak = _measure(compressor.compress, trajectories)
    return CompressionRun("UTCQ", archive.stats, elapsed, peak, archive)


def run_ted_compression(
    network: RoadNetwork,
    trajectories: list[UncertainTrajectory],
    profile: DatasetProfile,
    *,
    eta_distance: float = 1 / 128,
    eta_probability: float | None = None,
) -> CompressionRun:
    """Compress with the TED baseline; measure time and memory."""
    compressor = TEDCompressor(
        network=network,
        default_interval=profile.default_interval,
        eta_distance=eta_distance,
        eta_probability=eta_probability or profile.default_eta_probability,
    )
    archive, elapsed, peak = _measure(compressor.compress, trajectories)
    return CompressionRun("TED", archive.stats, elapsed, peak, archive)


@dataclass
class QueryWorkload:
    """A reusable set of query arguments derived from a dataset.

    The evaluation queries every dataset at positions/times its
    trajectories actually cover, so both engines do real work.
    """

    where_queries: list[tuple[int, int, float]]  # (trajectory, t, alpha)
    when_queries: list[tuple[int, tuple[int, int], float, float]]
    range_queries: list[tuple[object, int, float]]  # (Rect, t, alpha)


def build_query_workload(
    network: RoadNetwork,
    trajectories: list[UncertainTrajectory],
    *,
    count: int = 40,
    alpha: float = 0.25,
    range_margin: float = 200.0,
    seed: int = 5,
) -> QueryWorkload:
    """Sample a workload of where/when/range queries from the dataset."""
    import random

    from ..network.grid import Rect

    rng = random.Random(seed)
    where_queries = []
    when_queries = []
    range_queries = []
    population = trajectories if trajectories else []
    for _ in range(count):
        trajectory = rng.choice(population)
        t = rng.randint(trajectory.start_time, trajectory.end_time)
        where_queries.append((trajectory.trajectory_id, t, alpha))

        instance = trajectory.best_instance()
        location = rng.choice(instance.locations)
        rd = location.ndist / network.edge_length(*location.edge)
        when_queries.append(
            (trajectory.trajectory_id, location.edge, min(rd, 0.999), alpha)
        )

        x, y = location.position(network)
        range_queries.append(
            (
                Rect(
                    x - range_margin,
                    y - range_margin,
                    x + range_margin,
                    y + range_margin,
                ),
                t,
                alpha,
            )
        )
    return QueryWorkload(where_queries, when_queries, range_queries)


@dataclass
class QueryTimings:
    """Mean latency per query type, in milliseconds."""

    where_ms: float
    when_ms: float
    range_ms: float


def time_utcq_queries(processor, workload: QueryWorkload) -> QueryTimings:
    """Run the workload through the StIU processor and time it."""
    started = time.perf_counter()
    for trajectory_id, t, alpha in workload.where_queries:
        processor.where(trajectory_id, t, alpha)
    where_ms = (
        (time.perf_counter() - started)
        / max(len(workload.where_queries), 1)
        * 1000
    )
    started = time.perf_counter()
    for trajectory_id, edge, rd, alpha in workload.when_queries:
        processor.when(trajectory_id, edge, rd, alpha)
    when_ms = (
        (time.perf_counter() - started)
        / max(len(workload.when_queries), 1)
        * 1000
    )
    started = time.perf_counter()
    for region, t, alpha in workload.range_queries:
        processor.range(region, t, alpha)
    range_ms = (
        (time.perf_counter() - started)
        / max(len(workload.range_queries), 1)
        * 1000
    )
    return QueryTimings(where_ms, when_ms, range_ms)


def time_ted_queries(index, workload: QueryWorkload) -> QueryTimings:
    """Run the workload through the TED baseline index and time it."""
    started = time.perf_counter()
    for trajectory_id, t, alpha in workload.where_queries:
        index.where(trajectory_id, t, alpha)
    where_ms = (
        (time.perf_counter() - started)
        / max(len(workload.where_queries), 1)
        * 1000
    )
    started = time.perf_counter()
    for trajectory_id, edge, rd, alpha in workload.when_queries:
        index.when(trajectory_id, edge, rd, alpha)
    when_ms = (
        (time.perf_counter() - started)
        / max(len(workload.when_queries), 1)
        * 1000
    )
    started = time.perf_counter()
    for region, t, alpha in workload.range_queries:
        index.range(region, t, alpha)
    range_ms = (
        (time.perf_counter() - started)
        / max(len(workload.range_queries), 1)
        * 1000
    )
    return QueryTimings(where_ms, when_ms, range_ms)
