"""Query-serving benchmark (`repro serve-bench`).

PR 4 tracked the *write* path in ``BENCH_core_hotpaths.json``; this
module tracks the *read* path in ``BENCH_query_throughput.json`` — the
perf-trajectory file for query serving at the repo root.

The workload models a serving frontend:

* a fixed seeded dataset is compressed once and saved as a single
  archive plus a 4-way sharded copy (both with ``.stiu`` sidecars);
* a pool of distinct where/when/range queries is sampled from the
  dataset (:func:`~repro.workloads.harness.build_query_workload`), then
  a request stream is drawn from it with Zipf-like skew — popular
  queries repeat, exactly the locality a decode-span cache and batch
  dedupe exist for;
* three scenarios are timed, each in two modes:

  - ``warm_open``  — archive open to first query result.  ``legacy``
    rebuilds the StIU index from the records (the only option before
    the sidecar existed); ``fast`` loads the ``.stiu`` sidecar.
  - ``batch_queries`` — the request stream against one archive.
    ``legacy`` answers one query at a time with the pre-PR-5 caching
    behavior (:meth:`DecodeSpanCache.legacy`); ``fast`` hands the whole
    stream to a :class:`~repro.query.engine.BatchQueryEngine`.
  - ``sharded_queries`` — the same stream against the 4-way sharded
    copy.  ``legacy`` routes queries by hand to per-shard processors
    (ranges fan out and union); ``fast`` uses a warm
    :class:`~repro.query.engine.ShardedQueryEngine` process pool.

Both modes are measured steady-state (a warm-up pass, then best of
``repeats``), so the rows compare code paths, not cold caches against
warm ones.  All numbers are on the same machine-generated dataset, so
two labelled runs (``pr5-before`` via ``--mode legacy``, ``pr5-after``
via ``--mode fast``) are directly comparable.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass

from ..core.archive import CompressedArchive
from ..core.compressor import UTCQCompressor
from ..core.decoder import DecodeSpanCache
from ..trajectories.datasets import load_dataset, profile
from .hotpath_bench import BenchResult
from .reporting import ExperimentLog, merge_rows

BENCH_TABLE_TITLE = "query_throughput"
BENCH_HEADERS = ("label", "benchmark", "unit", "work", "seconds", "rate")
DEFAULT_OUTPUT = "BENCH_query_throughput.json"

SHARD_COUNT = 4
MODES = ("legacy", "fast")


@dataclass(frozen=True)
class GaugeResult(BenchResult):
    """A bench row whose headline number is a direct gauge, not
    work/seconds — availability percentages, latency percentiles."""

    value: float = 0.0

    @property
    def rate(self) -> float:
        return self.value

    def row(self, label: str) -> list:
        # gauges carry configuration too (seeds, fault probabilities);
        # BenchResult's 1-decimal rate rounding would erase them
        return [
            label,
            self.name,
            self.unit,
            self.work,
            round(self.seconds, 4),
            round(self.value, 6),
        ]


def build_serving_workload(
    network,
    trajectories,
    *,
    distinct_per_kind: int,
    total: int,
    workload_seed: int = 5,
    draw_seed: int = 11,
):
    """A skewed request stream over a distinct query pool.

    Returns ``(distinct_queries, stream)`` where ``stream`` draws
    ``total`` requests from the pool with weight ``1 / (rank + 1)`` —
    a Zipf-like popularity curve, so a handful of hot queries dominate
    the stream the way popular locations dominate real traffic.
    """
    from ..query.engine import RangeQuery, WhenQuery, WhereQuery
    from .harness import build_query_workload

    workload = build_query_workload(
        network, trajectories, count=distinct_per_kind, seed=workload_seed
    )
    distinct = (
        [WhereQuery(*args) for args in workload.where_queries]
        + [WhenQuery(*args) for args in workload.when_queries]
        + [RangeQuery(*args) for args in workload.range_queries]
    )
    rng = random.Random(draw_seed)
    weights = [1.0 / (rank + 1) for rank in range(len(distinct))]
    stream = rng.choices(distinct, weights=weights, k=total)
    return distinct, stream


class _ServingFixture:
    """Dataset + archives + request stream shared by every scenario."""

    def __init__(self, root, *, quick: bool) -> None:
        import os

        count = 60 if quick else 240
        scale = 12 if quick else 14
        prof = profile("CD")
        self.network, self.trajectories = load_dataset(
            "CD", count, seed=7, network_scale=scale
        )
        compressor = UTCQCompressor(
            network=self.network,
            default_interval=prof.default_interval,
            eta_probability=prof.default_eta_probability,
        )
        self.archive = compressor.compress(self.trajectories)
        self.archive_path = os.path.join(root, "serving.utcq")
        self._save_with_sidecar(self.archive, self.archive_path)
        self.shard_paths = []
        total = len(self.archive.trajectories)
        for shard in range(SHARD_COUNT):
            lo = shard * total // SHARD_COUNT
            hi = (shard + 1) * total // SHARD_COUNT
            part = CompressedArchive(
                params=self.archive.params,
                trajectories=self.archive.trajectories[lo:hi],
            )
            path = os.path.join(root, f"shard-{shard}.utcq")
            self._save_with_sidecar(part, path)
            self.shard_paths.append(path)
        self.distinct, self.stream = build_serving_workload(
            self.network,
            self.trajectories,
            distinct_per_kind=60 if quick else 200,
            total=600 if quick else 3000,
        )

    def _save_with_sidecar(self, archive, path) -> None:
        from ..query.sidecar import save_index
        from ..query.stiu import StIUIndex

        archive.save(path)
        save_index(StIUIndex(self.network, archive), path)


def _run_stream_one_at_a_time(processors, route, stream):
    """The pre-batch serving loop: one query, one processor call."""
    from ..query.engine import RangeQuery, WhereQuery

    for query in stream:
        if isinstance(query, RangeQuery):
            if len(processors) == 1:
                next(iter(processors.values())).range(
                    query.rect, query.t, query.alpha
                )
            else:
                merged: set[int] = set()
                for processor in processors.values():
                    merged.update(
                        processor.range(query.rect, query.t, query.alpha)
                    )
                sorted(merged)
        elif isinstance(query, WhereQuery):
            processors[route[query.trajectory_id]].where(
                query.trajectory_id, query.t, query.alpha
            )
        else:
            processors[route[query.trajectory_id]].when(
                query.trajectory_id,
                query.edge,
                query.relative_distance,
                query.alpha,
            )


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_warm_open(
    fixture: _ServingFixture, *, mode: str, repeats: int
) -> BenchResult:
    """Archive-open-to-first-result latency, in opens/sec."""
    from ..query.queries import UTCQQueryProcessor
    from ..query.stiu import StIUIndex

    first = next(
        query
        for query in fixture.stream
        if hasattr(query, "trajectory_id") and hasattr(query, "t")
    )
    sidecar_policy = None if mode == "legacy" else "auto"

    def open_and_query() -> None:
        index = StIUIndex.over_file(
            fixture.network, fixture.archive_path, sidecar=sidecar_policy
        )
        try:
            processor = UTCQQueryProcessor(
                fixture.network, index.archive, index
            )
            processor.where(first.trajectory_id, first.t, first.alpha)
        finally:
            index.archive.close()

    best = _best_of(repeats, open_and_query)
    return BenchResult("warm_open", "opens/s", 1, best)


def bench_batch_queries(
    fixture: _ServingFixture, *, mode: str, repeats: int
) -> BenchResult:
    """The request stream against one archive, in queries/sec."""
    from ..query.engine import BatchQueryEngine
    from ..query.queries import UTCQQueryProcessor
    from ..query.stiu import StIUIndex

    index = StIUIndex.over_file(fixture.network, fixture.archive_path)
    try:
        if mode == "legacy":
            processor = UTCQQueryProcessor(
                fixture.network,
                index.archive,
                index,
                cache=DecodeSpanCache.legacy(),
            )
            processors = {fixture.archive_path: processor}
            route = {
                trajectory_id: fixture.archive_path
                for trajectory_id in index.archive.trajectory_ids()
            }
            run = lambda: _run_stream_one_at_a_time(  # noqa: E731
                processors, route, fixture.stream
            )
        else:
            engine = BatchQueryEngine(fixture.network, index.archive, index)
            run = lambda: engine.run(fixture.stream)  # noqa: E731
        run()  # steady state: caches warm in both modes
        best = _best_of(repeats, run)
    finally:
        index.archive.close()
    return BenchResult("batch_queries", "queries/s", len(fixture.stream), best)


def bench_sharded_queries(
    fixture: _ServingFixture,
    *,
    mode: str,
    repeats: int,
    workers: int,
    transport: str | None = None,
    hotcache_entries: int | None = None,
    dispatch_window: int | None = None,
    reference: list | None = None,
) -> tuple[BenchResult, int | None]:
    """The request stream against the sharded copy, in queries/sec.

    Returns ``(result, mismatches)``; ``mismatches`` counts sharded
    answers that differ from ``reference`` (the single-archive batch
    engine's answers for the same stream) and is ``None`` when no
    reference was supplied.
    """
    from ..query.engine import ShardedQueryEngine
    from ..query.queries import UTCQQueryProcessor
    from ..query.stiu import StIUIndex

    mismatches: int | None = None
    if mode == "legacy":
        processors = {}
        route = {}
        indexes = []
        for path in fixture.shard_paths:
            index = StIUIndex.over_file(fixture.network, path, sidecar=None)
            indexes.append(index)
            processors[path] = UTCQQueryProcessor(
                fixture.network,
                index.archive,
                index,
                cache=DecodeSpanCache.legacy(),
            )
            for trajectory_id in index.archive.trajectory_ids():
                route[trajectory_id] = path
        try:
            run = lambda: _run_stream_one_at_a_time(  # noqa: E731
                processors, route, fixture.stream
            )
            run()
            best = _best_of(repeats, run)
        finally:
            for index in indexes:
                index.archive.close()
    else:
        with ShardedQueryEngine(
            fixture.shard_paths,
            network=fixture.network,
            workers=workers,
            transport=transport,
            hotcache_entries=hotcache_entries,
            dispatch_window=dispatch_window,
        ) as engine:
            # warm the pool + worker caches; the warm pass doubles as
            # the oracle pin for this transport/cache configuration
            answers = engine.run(fixture.stream)
            if reference is not None:
                mismatches = sum(
                    1
                    for answer, expected in zip(answers, reference)
                    if answer != expected
                )
            best = _best_of(repeats, lambda: engine.run(fixture.stream))
    return (
        BenchResult(
            "sharded_queries", "queries/s", len(fixture.stream), best
        ),
        mismatches,
    )


def _reference_answers(fixture: _ServingFixture) -> list:
    """The request stream answered by the single-archive batch engine —
    the oracle the sharded transports are pinned against."""
    from ..query.engine import BatchQueryEngine
    from ..query.stiu import StIUIndex

    index = StIUIndex.over_file(fixture.network, fixture.archive_path)
    try:
        engine = BatchQueryEngine(fixture.network, index.archive, index)
        return engine.run(fixture.stream)
    finally:
        index.archive.close()


def _config_rows(
    transport: str | None,
    hotcache_entries: int | None,
    dispatch_window: int | None,
) -> list[BenchResult]:
    """The effective serving configuration, in-band as gauge rows.

    A cache-size or transport sweep that does not record what it
    actually ran with cannot be reproduced; ``-1`` encodes an unbounded
    cache section.
    """
    from ..core.decoder import (
        resolve_instance_capacity,
        resolve_trajectory_capacity,
    )
    from ..network.shortest_path import resolve_frontier_cache_size
    from ..query.engine import resolve_dispatch_window
    from ..query.hotcache import resolve_hotcache_entries
    from ..query.transport import TRANSPORT_SHM, resolve_transport

    def bounded(value) -> float:
        return -1.0 if value is None else float(value)

    gauges = (
        (
            "config_transport_shm",
            "flag",
            1.0 if resolve_transport(transport) == TRANSPORT_SHM else 0.0,
        ),
        (
            "config_hotcache_entries",
            "entries",
            float(resolve_hotcache_entries(hotcache_entries)),
        ),
        (
            "config_dispatch_window",
            "tasks",
            float(resolve_dispatch_window(dispatch_window)),
        ),
        (
            "config_decode_cache_trajectories",
            "entries",
            bounded(resolve_trajectory_capacity()),
        ),
        (
            "config_decode_cache_instances",
            "entries",
            bounded(resolve_instance_capacity()),
        ),
        (
            "config_frontier_cache",
            "entries",
            float(resolve_frontier_cache_size()),
        ),
    )
    return [
        GaugeResult(name, unit, 1, 0.0, value=value)
        for name, unit, value in gauges
    ]


def run_query_bench(
    *,
    mode: str = "fast",
    quick: bool = False,
    repeats: int | None = None,
    workers: int = SHARD_COUNT,
    transport: str | None = None,
    hotcache_entries: int | None = None,
    dispatch_window: int | None = None,
) -> list[BenchResult]:
    """Run the three serving scenarios in one mode.

    The first three results are always ``warm_open`` /
    ``batch_queries`` / ``sharded_queries``; fast mode appends a
    ``sharded_oracle_mismatches`` gauge (sharded answers checked
    against the single-archive batch engine) and the effective serving
    configuration as ``config_*`` gauge rows.
    """
    import tempfile

    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        fixture = _ServingFixture(root, quick=quick)
        reference = _reference_answers(fixture) if mode == "fast" else None
        results = [
            bench_warm_open(fixture, mode=mode, repeats=max(repeats, 3)),
            bench_batch_queries(fixture, mode=mode, repeats=repeats),
        ]
        sharded, mismatches = bench_sharded_queries(
            fixture,
            mode=mode,
            repeats=repeats,
            workers=workers,
            transport=transport,
            hotcache_entries=hotcache_entries,
            dispatch_window=dispatch_window,
            reference=reference,
        )
        results.append(sharded)
        if mismatches is not None:
            results.append(
                GaugeResult(
                    "sharded_oracle_mismatches",
                    "results",
                    len(fixture.stream),
                    0.0,
                    value=float(mismatches),
                )
            )
            results.extend(
                _config_rows(transport, hotcache_entries, dispatch_window)
            )
        return results


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[min(rank, len(sorted_values) - 1)]


def run_chaos_bench(
    *,
    duration: float = 30.0,
    clients: int = 3,
    quick: bool = False,
    batch_size: int = 4,
    deadline: float = 5.0,
    kill_probability: float = 0.005,
    delay_probability: float = 0.02,
    delay_seconds: float = 0.4,
    workers: int = 2,
    seed: int = 23,
    transport: str | None = None,
    hotcache_entries: int | None = None,
) -> tuple[list[BenchResult], dict]:
    """Chaos mode of ``repro serve-bench``: availability under faults.

    Serves the skewed request stream through a supervised
    :class:`~repro.serve.QueryService` while a seeded
    :class:`~repro.serve.ChaosProxy` kills workers and delays responses,
    and — once, mid-run — a shard file is corrupted on disk, held
    corrupt briefly, then restored (exercising quarantine and
    re-admission).  Every completed answer is checked against reference
    results computed up front on a healthy single-process engine, so
    the headline numbers are:

    * **availability** — percent of requests answered (correctly)
      before their deadline; typed sheds and quarantine refusals count
      *against* it, mismatches would too (and fail the run's contract);
    * **p50/p99 latency** of the answered requests, which is where the
      cost of respawns, hedges, and ladder fallbacks shows up.

    Returns ``(rows, summary)`` — bench rows for the perf-trajectory
    file plus a diagnostic summary dict.
    """
    import tempfile

    from ..query import transport as query_transport
    from ..query.engine import ShardedQueryEngine
    from ..serve import ChaosProxy, QueryService, ServiceConfig
    from ..serve.chaos import corrupt_shard, kill_fault, restore_shard

    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-bench-") as root:
        fixture = _ServingFixture(root, quick=quick)
        with ShardedQueryEngine(
            fixture.shard_paths, network=fixture.network, workers=1
        ) as reference:
            expected = dict(
                zip(fixture.distinct, reference.run(fixture.distinct))
            )

        proxy_holder: list[ChaosProxy] = []

        def wrap(pool) -> ChaosProxy:
            proxy = ChaosProxy(
                pool,
                kill_probability=kill_probability,
                delay_probability=delay_probability,
                delay_seconds=delay_seconds,
                seed=seed,
            )
            proxy_holder.append(proxy)
            return proxy

        service = QueryService(
            fixture.shard_paths,
            network=fixture.network,
            workers=workers,
            pool_wrapper=wrap,
            config=ServiceConfig(
                deadline=deadline,
                quarantine_reprobe=0.05,
                breaker_reset=0.5,
                health_interval=0.25,
                transport=transport,
                hotcache_entries=hotcache_entries,
            ),
        )
        proxy = proxy_holder[0] if proxy_holder else None
        transport_shm = (
            service.engine.transport == query_transport.TRANSPORT_SHM
        )
        hotcache_effective = (
            service.engine.hotcache.capacity
            if service.engine.hotcache is not None
            else 0
        )

        lock = threading.Lock()
        latencies: list[float] = []
        outcomes: dict[str, int] = {}
        mismatches = 0
        checked = 0
        started = time.monotonic()
        stop_at = started + duration

        def client_loop(which: int) -> None:
            nonlocal mismatches, checked
            rng = random.Random(seed * 1000 + which)
            while time.monotonic() < stop_at:
                batch = rng.sample(
                    fixture.stream, min(batch_size, len(fixture.stream))
                )
                response = service.submit_many(
                    batch, client=f"client-{which}", deadline=deadline
                )
                bad = 0
                if response.ok:
                    bad = sum(
                        1
                        for query, answer in zip(batch, response.results)
                        if answer != expected[query]
                    )
                with lock:
                    outcomes[response.kind] = (
                        outcomes.get(response.kind, 0) + 1
                    )
                    if response.ok:
                        latencies.append(response.latency)
                        checked += len(batch)
                        mismatches += bad

        threads = [
            threading.Thread(
                target=client_loop, args=(which,), daemon=True,
                name=f"chaos-client-{which}",
            )
            for which in range(clients)
        ]
        for thread in threads:
            thread.start()

        # the scripted incident: corrupt one shard mid-run, hold
        # briefly, restore — long enough to force quarantine, short
        # enough that the fenced window stays inside the availability
        # budget at any --duration
        corrupt_path = fixture.shard_paths[-1]
        hold = max(0.1, min(0.25, duration / 300.0))
        time.sleep(max(0.0, started + 0.4 * duration - time.monotonic()))
        pristine = corrupt_shard(corrupt_path)
        try:
            if proxy is not None:
                # flush warm worker caches so the corruption is seen
                proxy.arm(kill_fault())
            time.sleep(hold)
        finally:
            restore_shard(corrupt_path, pristine)

        for thread in threads:
            thread.join(timeout=duration + 4 * deadline)
        elapsed = time.monotonic() - started
        service_stats = service.stats.snapshot()
        supervisor_stats = (
            service.supervisor.stats.snapshot()
            if service.supervisor is not None
            else {}
        )
        injected = dict(proxy.injected) if proxy is not None else {}
        still_quarantined = service.quarantined_shards()
        service.close()

    total = sum(outcomes.values())
    ok = outcomes.get("ok", 0)
    availability = 100.0 * ok / total if total else 0.0
    latencies.sort()
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    faults = sum(injected.values()) + 1  # +1: the corruption incident
    rows = [
        BenchResult("chaos_requests", "req/s", total, elapsed),
        GaugeResult(
            "chaos_availability", "percent", ok, elapsed, value=availability
        ),
        GaugeResult(
            "chaos_p50_latency", "ms", len(latencies), elapsed,
            value=p50 * 1000.0,
        ),
        GaugeResult(
            "chaos_p99_latency", "ms", len(latencies), elapsed,
            value=p99 * 1000.0,
        ),
        GaugeResult(
            "chaos_mismatches", "results", checked, elapsed,
            value=float(mismatches),
        ),
        GaugeResult(
            "chaos_faults_injected", "faults", faults, elapsed,
            value=float(faults),
        ),
        # the fault script itself, in-band: a chaos row set that does
        # not record its seed and injection knobs cannot be reproduced
        GaugeResult(
            "chaos_seed", "seed", 1, elapsed, value=float(seed)
        ),
        GaugeResult(
            "chaos_kill_probability", "probability", 1, elapsed,
            value=kill_probability,
        ),
        GaugeResult(
            "chaos_delay_probability", "probability", 1, elapsed,
            value=delay_probability,
        ),
        GaugeResult(
            "chaos_delay_seconds", "seconds", 1, elapsed,
            value=delay_seconds,
        ),
        GaugeResult(
            "chaos_transport_shm", "flag", 1, elapsed,
            value=1.0 if transport_shm else 0.0,
        ),
        GaugeResult(
            "chaos_hotcache_entries", "entries", 1, elapsed,
            value=float(hotcache_effective),
        ),
    ]
    summary = {
        "seed": seed,
        "transport": "shm" if transport_shm else "pickle",
        "hotcache_entries": hotcache_effective,
        "fault_script": {
            "kill_probability": kill_probability,
            "delay_probability": delay_probability,
            "delay_seconds": delay_seconds,
            "corruption_incidents": 1,
            "corruption_hold_seconds": round(hold, 3),
        },
        "duration": round(elapsed, 3),
        "clients": clients,
        "requests": total,
        "outcomes": dict(sorted(outcomes.items())),
        "availability_percent": round(availability, 3),
        "p50_ms": round(p50 * 1000.0, 3),
        "p99_ms": round(p99 * 1000.0, 3),
        "results_checked": checked,
        "result_mismatches": mismatches,
        "faults_injected": injected,
        "still_quarantined": still_quarantined,
        "service": service_stats,
        "supervisor": supervisor_stats,
    }
    return rows, summary


def _batches(stream: list, size: int) -> list[list]:
    return [stream[i:i + size] for i in range(0, len(stream), size)]


def run_wire_bench(
    *,
    quick: bool = False,
    workers: int = 2,
    transport: str | None = None,
    hotcache_entries: int | None = None,
    dispatch_window: int | None = None,
    batch_size: int = 16,
    repeats: int | None = None,
) -> tuple[list[BenchResult], dict]:
    """Wire mode of ``repro serve-bench``: what the socket costs.

    The same skewed request stream is served twice by the *same*
    :class:`~repro.serve.QueryService` — once with in-process
    ``submit_many`` calls, once through a loopback
    :class:`~repro.serve.WireServerThread` via a
    :class:`~repro.serve.WireClient` (frame encode, TCP, CRC check,
    answer-blob decode) — so the row pair isolates the wire overhead
    from everything below it.  Every wire answer is checked against the
    single-archive reference; a mismatch fails the run's contract.
    """
    import tempfile

    from ..serve import (
        QueryService,
        ServiceConfig,
        WireClient,
        WireServerConfig,
        WireServerThread,
    )

    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    with tempfile.TemporaryDirectory(prefix="repro-wire-bench-") as root:
        fixture = _ServingFixture(root, quick=quick)
        reference = _reference_answers(fixture)
        batches = _batches(fixture.stream, batch_size)
        service = QueryService(
            fixture.shard_paths,
            network=fixture.network,
            workers=workers,
            config=ServiceConfig(
                deadline=60.0,
                transport=transport,
                hotcache_entries=hotcache_entries,
                dispatch_window=dispatch_window,
            ),
        )
        mismatches = 0
        try:
            # correctness pass (and warm-up): in-process answers
            # against the oracle
            position = 0
            for batch in batches:
                response = service.submit_many(batch, client="wire-bench")
                if not response.ok:
                    raise ValueError(
                        f"wire bench warm-up failed: {response.error}"
                    )
                expected = reference[position:position + len(batch)]
                mismatches += sum(
                    1
                    for answer, oracle in zip(response.results, expected)
                    if answer != oracle
                )
                position += len(batch)

            def inprocess_pass() -> None:
                for batch in batches:
                    if not service.submit_many(
                        batch, client="wire-bench"
                    ).ok:
                        raise ValueError("in-process request failed")

            inprocess_seconds = _best_of(repeats, inprocess_pass)

            with WireServerThread(service) as server:
                with WireClient(
                    "127.0.0.1",
                    server.port,
                    client_id="wire-bench",
                    seed=17,
                ) as client:
                    ping_ms = client.ping() * 1000.0
                    # correctness pass over the wire: codec + CRC +
                    # socket must hand back oracle-identical answers
                    position = 0
                    for batch in batches:
                        result = client.request(batch)
                        expected = reference[
                            position:position + len(batch)
                        ]
                        mismatches += sum(
                            1
                            for answer, oracle in zip(
                                result.results, expected
                            )
                            if answer != oracle
                        )
                        position += len(batch)

                    def wire_pass() -> None:
                        for batch in batches:
                            client.request(batch)

                    wire_seconds = _best_of(repeats, wire_pass)
        finally:
            service.close()

    total = len(fixture.stream)
    inprocess_qps = total / inprocess_seconds
    wire_qps = total / wire_seconds
    overhead = 100.0 * (wire_seconds - inprocess_seconds) / inprocess_seconds
    rows = [
        BenchResult("wire_inprocess_queries", "queries/s", total,
                    inprocess_seconds),
        BenchResult("wire_loopback_queries", "queries/s", total,
                    wire_seconds),
        GaugeResult(
            "wire_overhead", "percent", total, wire_seconds,
            value=overhead,
        ),
        GaugeResult(
            "wire_ping", "ms", 1, 0.0, value=ping_ms,
        ),
        GaugeResult(
            "wire_batch_size", "queries", 1, 0.0, value=float(batch_size),
        ),
        GaugeResult(
            "wire_mismatches", "results", 2 * total, wire_seconds,
            value=float(mismatches),
        ),
    ]
    summary = {
        "queries": total,
        "batch_size": batch_size,
        "inprocess_qps": round(inprocess_qps, 1),
        "wire_qps": round(wire_qps, 1),
        "overhead_percent": round(overhead, 2),
        "ping_ms": round(ping_ms, 3),
        "results_checked": 2 * total,
        "result_mismatches": mismatches,
    }
    return rows, summary


def run_wire_chaos_bench(
    *,
    duration: float = 30.0,
    clients: int = 3,
    quick: bool = False,
    batch_size: int = 4,
    deadline: float = 5.0,
    refuse_probability: float = 0.02,
    disconnect_probability: float = 0.01,
    truncate_probability: float = 0.005,
    corrupt_probability: float = 0.01,
    stall_probability: float = 0.02,
    stall_seconds: float = 0.05,
    workers: int = 2,
    seed: int = 29,
    transport: str | None = None,
    hotcache_entries: int | None = None,
) -> tuple[list[BenchResult], dict]:
    """Network chaos mode: availability through a hostile wire.

    The request stream crosses a real TCP hop —
    :class:`~repro.serve.WireClient` → seeded
    :class:`~repro.serve.ChaosTCPProxy` →
    :class:`~repro.serve.WireServerThread` →
    :class:`~repro.serve.QueryService` → worker pool and shm transport
    — while the proxy refuses connections, disconnects mid-frame,
    truncates frames, corrupts bytes in flight, and stalls chunks, and
    a dedicated **slow-loris** thread holds half-sent headers open
    until the server's read deadlines reap them.  Clients retry with
    jittered backoff, so availability measures *end-to-end* recovery:
    a request counts as served only if a correct answer came back
    before the caller gave up.  Every completed answer is checked
    against a healthy single-process reference — corruption that
    slipped through the CRCs would land in ``result_mismatches`` and
    fail the run's contract.
    """
    import socket as socket_module
    import tempfile

    from ..query.engine import ShardedQueryEngine
    from ..serve import (
        ChaosTCPProxy,
        DeadlineExceeded,
        Overloaded,
        QueryService,
        ServiceConfig,
        ShardQuarantined,
        WireClient,
        WireError,
        WireServerConfig,
        WireServerThread,
    )

    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    with tempfile.TemporaryDirectory(prefix="repro-wire-chaos-") as root:
        fixture = _ServingFixture(root, quick=quick)
        with ShardedQueryEngine(
            fixture.shard_paths, network=fixture.network, workers=1
        ) as reference:
            expected = dict(
                zip(fixture.distinct, reference.run(fixture.distinct))
            )
        service = QueryService(
            fixture.shard_paths,
            network=fixture.network,
            workers=workers,
            config=ServiceConfig(
                deadline=deadline,
                quarantine_reprobe=0.05,
                breaker_reset=0.5,
                health_interval=0.25,
                transport=transport,
                hotcache_entries=hotcache_entries,
            ),
        )
        lock = threading.Lock()
        latencies: list[float] = []
        outcomes: dict[str, int] = {}
        mismatches = 0
        checked = 0
        loris_reaped = 0
        try:
            with WireServerThread(
                service,
                config=WireServerConfig(
                    idle_timeout=2.0, read_timeout=1.0
                ),
            ) as server:
                with ChaosTCPProxy(
                    "127.0.0.1",
                    server.port,
                    refuse_probability=refuse_probability,
                    disconnect_probability=disconnect_probability,
                    truncate_probability=truncate_probability,
                    corrupt_probability=corrupt_probability,
                    stall_probability=stall_probability,
                    stall_seconds=stall_seconds,
                    seed=seed,
                ) as proxy:
                    started = time.monotonic()
                    stop_at = started + duration
                    running = threading.Event()
                    running.set()

                    def client_loop(which: int) -> None:
                        nonlocal mismatches, checked
                        rng = random.Random(seed * 1000 + which)
                        client = WireClient(
                            "127.0.0.1",
                            proxy.port,
                            client_id=f"wire-{which}",
                            connect_timeout=1.0,
                            request_timeout=deadline + 2.0,
                            max_attempts=5,
                            seed=seed * 77 + which,
                        )
                        try:
                            while time.monotonic() < stop_at:
                                batch = rng.sample(
                                    fixture.stream,
                                    min(batch_size, len(fixture.stream)),
                                )
                                try:
                                    result = client.request(
                                        batch, deadline=deadline
                                    )
                                except Overloaded:
                                    outcome = "overloaded"
                                except DeadlineExceeded:
                                    outcome = "deadline"
                                except ShardQuarantined:
                                    outcome = "quarantined"
                                except (WireError, OSError):
                                    outcome = "wire_failed"
                                else:
                                    outcome = "ok"
                                    bad = sum(
                                        1
                                        for query, answer in zip(
                                            batch, result.results
                                        )
                                        if answer != expected[query]
                                    )
                                    with lock:
                                        latencies.append(result.latency)
                                        checked += len(batch)
                                        mismatches += bad
                                with lock:
                                    outcomes[outcome] = (
                                        outcomes.get(outcome, 0) + 1
                                    )
                        finally:
                            client.close()

                    def loris_loop() -> None:
                        # hold half-sent headers open; the server's
                        # idle/read deadlines must reap each one
                        nonlocal loris_reaped
                        while running.is_set() and (
                            time.monotonic() < stop_at
                        ):
                            try:
                                sock = socket_module.create_connection(
                                    ("127.0.0.1", proxy.port),
                                    timeout=1.0,
                                )
                            except OSError:
                                time.sleep(0.1)  # refused by chaos
                                continue
                            try:
                                sock.settimeout(10.0)
                                sock.sendall(b"RW\x01\x01half")
                                if sock.recv(64) == b"":
                                    with lock:
                                        loris_reaped += 1
                            except OSError:
                                with lock:
                                    loris_reaped += 1
                            finally:
                                try:
                                    sock.close()
                                except OSError:
                                    pass

                    threads = [
                        threading.Thread(
                            target=client_loop, args=(which,),
                            daemon=True, name=f"wire-client-{which}",
                        )
                        for which in range(clients)
                    ]
                    threads.append(
                        threading.Thread(
                            target=loris_loop, daemon=True,
                            name="wire-loris",
                        )
                    )
                    for thread in threads:
                        thread.start()
                    for thread in threads[:clients]:
                        thread.join(timeout=duration + 4 * deadline)
                    running.clear()
                    threads[-1].join(timeout=15.0)
                    elapsed = time.monotonic() - started
                    injected = dict(proxy.injected)
                    wire_stats = {
                        "connections": server.server.stats.
                        connections_total.value,
                        "requests": server.server.stats.requests.value,
                        "shed": server.server.stats.shed.value,
                    }
            service_stats = service.stats.snapshot()
        finally:
            service.close()

    total = sum(outcomes.values())
    ok = outcomes.get("ok", 0)
    availability = 100.0 * ok / total if total else 0.0
    latencies.sort()
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    faults = sum(injected.values())
    rows = [
        BenchResult("wirechaos_requests", "req/s", total, elapsed),
        GaugeResult(
            "wirechaos_availability", "percent", ok, elapsed,
            value=availability,
        ),
        GaugeResult(
            "wirechaos_p50_latency", "ms", len(latencies), elapsed,
            value=p50 * 1000.0,
        ),
        GaugeResult(
            "wirechaos_p99_latency", "ms", len(latencies), elapsed,
            value=p99 * 1000.0,
        ),
        GaugeResult(
            "wirechaos_mismatches", "results", checked, elapsed,
            value=float(mismatches),
        ),
        GaugeResult(
            "wirechaos_faults_injected", "faults", max(faults, 1),
            elapsed, value=float(faults),
        ),
        GaugeResult(
            "wirechaos_loris_reaped", "connections", 1, elapsed,
            value=float(loris_reaped),
        ),
        # the fault script, in-band, or the row set is unreproducible
        GaugeResult(
            "wirechaos_seed", "seed", 1, elapsed, value=float(seed)
        ),
        GaugeResult(
            "wirechaos_refuse_probability", "probability", 1, elapsed,
            value=refuse_probability,
        ),
        GaugeResult(
            "wirechaos_disconnect_probability", "probability", 1,
            elapsed, value=disconnect_probability,
        ),
        GaugeResult(
            "wirechaos_truncate_probability", "probability", 1,
            elapsed, value=truncate_probability,
        ),
        GaugeResult(
            "wirechaos_corrupt_probability", "probability", 1, elapsed,
            value=corrupt_probability,
        ),
        GaugeResult(
            "wirechaos_stall_probability", "probability", 1, elapsed,
            value=stall_probability,
        ),
    ]
    summary = {
        "seed": seed,
        "fault_script": {
            "refuse_probability": refuse_probability,
            "disconnect_probability": disconnect_probability,
            "truncate_probability": truncate_probability,
            "corrupt_probability": corrupt_probability,
            "stall_probability": stall_probability,
            "stall_seconds": stall_seconds,
        },
        "duration": round(elapsed, 3),
        "clients": clients,
        "requests": total,
        "outcomes": dict(sorted(outcomes.items())),
        "availability_percent": round(availability, 3),
        "p50_ms": round(p50 * 1000.0, 3),
        "p99_ms": round(p99 * 1000.0, 3),
        "results_checked": checked,
        "result_mismatches": mismatches,
        "network_faults": injected,
        "loris_reaped": loris_reaped,
        "wire": wire_stats,
        "service": service_stats,
    }
    return rows, summary


def run_trace_probe(
    *,
    quick: bool = True,
    workers: int = SHARD_COUNT,
    queries: int = 64,
    repeats: int = 3,
    transport: str | None = None,
    dispatch_window: int | None = None,
    hotcache_entries: int | None = None,
) -> tuple[dict, dict]:
    """One traced request through the real sharded serving path.

    Builds the serving fixture, warms the :class:`QueryService` process
    pool, then submits a ``queries``-sized batch with ``trace=True``
    ``repeats`` times and keeps the fastest request — steady-state, so
    the span tree attributes the request's wall time to plan / IPC /
    worker decode / merge without pool-spawn noise.  This is the
    instrument behind ``repro obs trace`` and the ROADMAP item 1
    evidence in ``docs/observability.md``.

    Returns ``(trace, breakdown)`` — the root span as a dict and the
    :func:`~repro.obs.trace.ipc_breakdown` aggregate over it.
    """
    import tempfile

    from ..obs.trace import Span, ipc_breakdown
    from ..serve import QueryService, ServiceConfig

    if queries < 1:
        raise ValueError(f"queries must be >= 1, got {queries}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    with tempfile.TemporaryDirectory(prefix="repro-trace-probe-") as root:
        fixture = _ServingFixture(root, quick=quick)
        batch = fixture.stream[: min(queries, len(fixture.stream))]
        service = QueryService(
            fixture.shard_paths,
            network=fixture.network,
            workers=workers,
            config=ServiceConfig(
                transport=transport,
                dispatch_window=dispatch_window,
                hotcache_entries=hotcache_entries,
            ),
        )
        try:
            warm = service.submit_many(batch, client="trace-probe")
            if not warm.ok:
                raise ValueError(
                    f"trace probe warm-up failed: {warm.error}"
                )
            best: dict | None = None
            best_wall = float("inf")
            for _ in range(repeats):
                response = service.submit_many(
                    batch, client="trace-probe", trace=True
                )
                if not response.ok or response.trace is None:
                    continue
                wall = float(response.trace.get("wall", 0.0))
                if wall < best_wall:
                    best, best_wall = response.trace, wall
            if best is None:
                raise ValueError("trace probe: no traced request completed")
        finally:
            service.close()
    return best, ipc_breakdown(Span.from_dict(best))


def load_existing_rows(path) -> list[list]:
    """Rows of the ``query_throughput`` table in an existing results file."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            document = json.load(stream)
    except (OSError, ValueError):
        return []
    if document.get("format") != "repro-bench":
        return []
    for table in document.get("tables", ()):
        if table.get("title") == BENCH_TABLE_TITLE:
            return [list(row) for row in table.get("rows", ())]
    return []


def write_bench_json(
    results: list[BenchResult],
    path,
    *,
    label: str = "current",
    append: bool = False,
) -> list[list]:
    """Write (or extend) the query-serving perf trajectory at ``path``.

    Appending merges by ``(label, benchmark)``: re-running a bench with
    an existing label replaces its rows instead of duplicating them.
    """
    fresh = [result.row(label) for result in results]
    rows = (
        merge_rows(load_existing_rows(path), fresh) if append else fresh
    )
    log = ExperimentLog()
    log.record(BENCH_TABLE_TITLE, BENCH_HEADERS, rows)
    log.write_json(path)
    return rows
