"""Streaming ingestion end to end: replay a fleet feed, query it live,
then compact it into a canonical archive.

A synthetic fleet of taxis emits noisy GPS fixes as one interleaved,
time-ordered stream.  The streaming subsystem matches each fix online
(incremental list-Viterbi), cuts per-vehicle trips, compresses sealed
trips into rotating ``.utcq`` segments, and keeps the sealed union
queryable the whole time.  Compaction at the end produces a single
archive indistinguishable from a batch-written one.

Run with ``PYTHONPATH=src python examples/stream_replay.py``.
"""

import tempfile
from pathlib import Path

from repro import (
    AppendableArchiveWriter,
    LiveArchive,
    SessionConfig,
    StIUIndex,
    TripSessionizer,
    UTCQQueryProcessor,
    compact,
    replay,
)
from repro.io.format import read_archive
from repro.mapmatching.noise import synthesize_raw_dataset
from repro.network.generators import dataset_network
from repro.trajectories.datasets import profile


def main() -> None:
    prof = profile("CD")
    network = dataset_network("CD", scale=12, seed=11)
    feeds = synthesize_raw_dataset(
        network, prof.generation_config(), 10, seed=11, noise_sigma=12.0
    )
    print(
        f"fleet feed: {len(feeds)} vehicles, "
        f"{sum(len(f) for f in feeds)} raw fixes"
    )

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "fleet"
        sessionizer = TripSessionizer(
            network, config=SessionConfig(gap_timeout=3600.0)
        )
        writer = AppendableArchiveWriter(
            directory,
            network,
            default_interval=prof.default_interval,
            segment_max_trajectories=4,
        )

        # --- ingest the first half of the fleet, then query live -----
        replay(sessionizer, feeds[:5], writer=writer)
        live = LiveArchive(directory)
        print(
            f"mid-ingestion: {live.trajectory_count} trips sealed in "
            f"{live.segment_count} segments — querying while ingesting"
        )
        queries = UTCQQueryProcessor(
            network, live, StIUIndex(network, live)
        )
        trip_id = live.trajectory_ids()[0]
        trip = live.trajectory(trip_id)
        t = (trip.start_time + trip.end_time) // 2
        results = queries.where(trip_id, t, alpha=0.1)
        print(f"live where(trip {trip_id}, t={t}): {len(results)} locations")

        # --- finish the feed --------------------------------------
        report = replay(sessionizer, feeds[5:], writer=writer)
        writer.close()
        live.refresh()
        print(
            f"ingested {report.points} more points at "
            f"{report.points_per_second:,.0f} points/sec sustained; "
            f"{live.trajectory_count} trips total"
        )

        # --- compact into one canonical batch-format archive -------
        output = Path(tmp) / "fleet.utcq"
        size, count = compact(directory, output)
        archive = read_archive(output)  # full CRC verification
        assert archive.trajectory_count == live.trajectory_count
        compacted_queries = UTCQQueryProcessor(
            network, archive, StIUIndex(network, archive)
        )
        assert compacted_queries.where(trip_id, t, alpha=0.1) == results
        live.close()
        print(
            f"compacted {count} trips into {output.name} ({size} bytes); "
            f"live and compacted query results agree"
        )


if __name__ == "__main__":
    main()
