"""Taxi-fleet compression: UTCQ vs the TED baseline on all three profiles.

The scenario from the paper's introduction: a fleet's GPS pipeline emits
masses of uncertain trajectories; storage wants the best ratio at the
lowest compression cost.  This example regenerates a small-scale
Table 8: per-component ratios, wall-clock time, and peak memory for both
compressors on DK / CD / HZ-profile data.

Run:  python examples/taxi_fleet_compression.py
"""

from repro.trajectories.datasets import load_dataset, profile
from repro.workloads.harness import run_ted_compression, run_utcq_compression
from repro.workloads.reporting import render_table


def main() -> None:
    rows = []
    for name in ("DK", "CD", "HZ"):
        prof = profile(name)
        network, trajectories = load_dataset(
            name, trajectory_count=150, seed=7, network_scale=14
        )
        utcq = run_utcq_compression(
            network,
            trajectories,
            prof,
            pivot_count=2 if name == "DK" else 1,
        )
        ted = run_ted_compression(network, trajectories, prof)
        for run in (utcq, ted):
            ratios = run.ratio_row()
            rows.append(
                [
                    name,
                    run.method,
                    ratios["Total"],
                    ratios["T"],
                    ratios["E"],
                    ratios["D"],
                    ratios["T'"],
                    ratios["p"],
                    run.seconds,
                    run.peak_memory_mb,
                ]
            )
        speedup = ted.seconds / max(utcq.seconds, 1e-9)
        gain = utcq.stats.total_ratio / ted.stats.total_ratio
        print(
            f"{name}: UTCQ compresses {gain:.2f}x better and "
            f"{speedup:.1f}x faster than TED"
        )

    print()
    print(
        render_table(
            "Fleet compression summary (Table 8, laptop scale)",
            [
                "dataset",
                "method",
                "Total",
                "T",
                "E",
                "D",
                "T'",
                "p",
                "time (s)",
                "peak MB",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
