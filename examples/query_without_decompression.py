"""Query compressed trajectories without decompressing the archive.

Demonstrates the StIU index and the three probabilistic queries —
where, when, and range — plus the filter instrumentation showing how
much work Lemmas 1-4 avoided.  Results are cross-checked against a
brute-force oracle on the uncompressed data.

Run:  python examples/query_without_decompression.py
"""

from repro import (
    BruteForceOracle,
    Rect,
    StIUIndex,
    UTCQQueryProcessor,
    compress_dataset,
    load_dataset,
)
from repro.query import range_accuracy, when_accuracy, where_accuracy


def main() -> None:
    network, trajectories = load_dataset("HZ", trajectory_count=80, seed=9)
    archive = compress_dataset(
        network, trajectories, default_interval=20, eta_probability=1 / 2048
    )
    index = StIUIndex(
        network, archive, grid_cells_per_side=32, time_partition_seconds=1200
    )
    print(
        f"StIU index: {index.temporal_size_bytes() / 1024:.1f} KB temporal + "
        f"{index.spatial_size_bytes() / 1024:.1f} KB spatial over a "
        f"{archive.compressed_bytes / 1024:.1f} KB archive"
    )
    queries = UTCQQueryProcessor(network, archive, index)
    oracle = BruteForceOracle(network, trajectories)

    target = max(trajectories, key=lambda t: t.instance_count)
    t_mid = (target.start_time + target.end_time) // 2
    # threshold relative to the trajectory's own probability mass: with
    # many instances, each individual probability is small
    alpha = target.best_instance().probability / 2

    # --- probabilistic where -------------------------------------------
    got = queries.where(target.trajectory_id, t_mid, alpha=alpha)
    expected = oracle.where(target.trajectory_id, t_mid, alpha=alpha)
    report = where_accuracy(network, expected, got)
    print(
        f"\nwhere({target.trajectory_id}, {t_mid}, {alpha:.3f}): "
        f"{len(got)} locations, F1={report.f1:.3f}, "
        f"avg position error {report.average_difference:.2f} m"
    )

    # --- probabilistic when --------------------------------------------
    instance = target.best_instance()
    location = instance.locations[len(instance.locations) // 2]
    rd = location.ndist / network.edge_length(*location.edge)
    got_when = queries.when(
        target.trajectory_id, location.edge, rd, alpha=alpha
    )
    expected_when = oracle.when(
        target.trajectory_id, location.edge, rd, alpha=alpha
    )
    report_when = when_accuracy(expected_when, got_when)
    print(
        f"when({target.trajectory_id}, {location.edge}, {rd:.3f}, "
        f"{alpha:.3f}): {len(got_when)} passes, avg time error "
        f"{report_when.average_difference:.2f} s"
    )

    # --- probabilistic range -------------------------------------------
    x, y = location.position(network)
    region = Rect(x - 250, y - 250, x + 250, y + 250)
    queries.counters.reset()
    got_range = queries.range(region, t_mid, alpha=0.3)
    expected_range = oracle.range(region, t_mid, alpha=0.3)
    report_range = range_accuracy(expected_range, got_range)
    counters = queries.counters
    print(
        f"range(500m box, {t_mid}, 0.3): {len(got_range)} trajectories, "
        f"F1={report_range.f1:.3f}"
    )
    print(
        "filter work avoided — trajectories pruned by Lemma 4: "
        f"{counters.trajectories_pruned}, sub-paths settled by Lemma 2: "
        f"{counters.lemma2_inside} inside / {counters.lemma2_disjoint} "
        f"disjoint / {counters.lemma2_boundary} boundary checks"
    )
    print(f"instances decoded in total: {counters.instances_decoded}")


if __name__ == "__main__":
    main()
