"""The full pipeline of the paper's Fig. 1: raw GPS to compressed queries.

Synthesizes noisy raw GPS drives (off-road fixes, jittered sampling),
runs the probabilistic map matcher (k-best Viterbi) to obtain
network-constrained uncertain trajectories, compresses them with UTCQ,
and reports how matching ambiguity turned into instances.

Run:  python examples/map_matching_pipeline.py
"""

from repro import MatcherConfig, ProbabilisticMapMatcher, compress_dataset
from repro.mapmatching import synthesize_raw_dataset
from repro.network.generators import dataset_network
from repro.trajectories.datasets import CD


def main() -> None:
    network = dataset_network("CD", scale=16, seed=3)
    config = CD.generation_config()

    # 1. raw GPS: ground-truth drives + Gaussian position noise
    raws = synthesize_raw_dataset(
        network, config, count=40, seed=5, noise_sigma=25.0
    )
    fixes = sum(len(raw) for raw in raws)
    print(f"synthesized {len(raws)} raw trajectories ({fixes} GPS fixes)")

    # 2. probabilistic map matching: each raw trajectory becomes a set of
    #    weighted network-constrained instances
    matcher = ProbabilisticMapMatcher(
        network,
        MatcherConfig(sigma=25.0, search_radius=70.0, max_instances=6),
    )
    matched = matcher.match_many(raws)
    instance_counts = [t.instance_count for t in matched]
    ambiguous = sum(1 for count in instance_counts if count > 1)
    print(
        f"matched {len(matched)}/{len(raws)} trajectories; "
        f"{ambiguous} are ambiguous "
        f"(avg {sum(instance_counts) / len(instance_counts):.1f} instances)"
    )
    example = max(matched, key=lambda t: t.instance_count)
    print(f"most ambiguous trajectory ({example.instance_count} instances):")
    for index, instance in enumerate(example.instances):
        print(
            f"  instance {index}: p={instance.probability:.3f}, "
            f"{len(instance.path)} edges, starts at vertex "
            f"{instance.start_vertex}"
        )

    # 3. compress the matcher's output
    archive = compress_dataset(network, matched, default_interval=10)
    row = archive.stats.as_row()
    print(
        "\ncompression of matched data — "
        + ", ".join(f"{key}: {value:.2f}" for key, value in row.items())
    )


if __name__ == "__main__":
    main()
