"""Quickstart: compress uncertain trajectories and query them compressed.

Generates a Chengdu-profile dataset on a synthetic road network,
compresses it with UTCQ, shows the per-component compression ratios, and
answers a probabilistic where query directly on the compressed archive.

Run:  python examples/quickstart.py
"""

from repro import (
    StIUIndex,
    UTCQQueryProcessor,
    compress_dataset,
    decode_trajectory,
    load_dataset,
)


def main() -> None:
    # 1. a dataset: a road network plus network-constrained uncertain
    #    trajectories following the paper's Chengdu statistics
    network, trajectories = load_dataset("CD", trajectory_count=100, seed=42)
    instance_count = sum(t.instance_count for t in trajectories)
    print(
        f"dataset: {len(trajectories)} uncertain trajectories, "
        f"{instance_count} instances, network with "
        f"{network.vertex_count} vertices / {network.edge_count} edges"
    )

    # 2. compress (CD's default sample interval is 10 s)
    archive = compress_dataset(network, trajectories, default_interval=10)
    row = archive.stats.as_row()
    print(
        "compression ratios — "
        + ", ".join(f"{key}: {value:.2f}" for key, value in row.items())
    )
    print(
        f"{archive.original_bytes / 1024:.1f} KB -> "
        f"{archive.compressed_bytes / 1024:.1f} KB"
    )

    # 3. index and query without full decompression
    index = StIUIndex(network, archive, grid_cells_per_side=32)
    queries = UTCQQueryProcessor(network, archive, index)

    target = trajectories[0]
    t = (target.start_time + target.end_time) // 2
    print(f"\nwhere was trajectory {target.trajectory_id} at t={t} "
          f"(instances with probability >= 0.2)?")
    for result in queries.where(target.trajectory_id, t, alpha=0.2):
        print(
            f"  instance {result.instance_index}: edge "
            f"{result.edge[0]} -> {result.edge[1]} at {result.ndist:.1f} m "
            f"(p={result.probability:.3f})"
        )

    # 4. decompression is lossless for paths and eta-bounded for distances
    restored = decode_trajectory(
        network, archive.trajectories[0], archive.params
    )
    assert restored.instances[0].path == target.instances[0].path
    print("\nround-trip check passed: decoded paths are identical")


if __name__ == "__main__":
    main()
