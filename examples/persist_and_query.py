"""Persist an archive to disk and query it without loading it back.

Compresses a Chengdu-profile dataset across all cores (byte-identical
to a serial run), writes the versioned ``.utcq`` on-disk format, then
reopens the file lazily and answers where/when queries straight off
disk — only the touched trajectory records are ever decoded.

Run:  python examples/persist_and_query.py
"""

import os
import tempfile

from repro import (
    FileBackedArchive,
    StIUIndex,
    UTCQQueryProcessor,
    compress_parallel,
    load_dataset,
)


def main() -> None:
    # 1. dataset + multi-core compression
    network, trajectories = load_dataset("CD", trajectory_count=100, seed=42)
    archive, report = compress_parallel(
        network, trajectories, default_interval=10
    )
    print(
        f"compressed {report.trajectory_count} trajectories "
        f"({report.instance_count} instances) in "
        f"{report.elapsed_seconds:.2f}s with {report.workers} workers "
        f"({report.trajectories_per_second:.0f} traj/s)"
    )

    # 2. persist to the .utcq format
    path = os.path.join(tempfile.mkdtemp(), "cd.utcq")
    size = archive.save(path, provenance={"example": "persist_and_query"})
    print(
        f"wrote {path}: {size} bytes on disk "
        f"({archive.compressed_bytes} payload bytes, "
        f"ratio {archive.stats.total_ratio:.2f})"
    )

    # 3. reopen lazily: the StIU index streams trajectories through a
    #    bounded LRU; queries decode only what they touch
    with FileBackedArchive.open(path, cache_size=8) as on_disk:
        index = StIUIndex(network, on_disk, grid_cells_per_side=32)
        queries = UTCQQueryProcessor(network, on_disk, index)

        target = trajectories[0]
        t = (target.start_time + target.end_time) // 2
        print(f"\nwhere was trajectory {target.trajectory_id} at t={t}?")
        located = queries.where(target.trajectory_id, t, alpha=0.2)
        for result in located:
            print(
                f"  instance {result.instance_index}: edge "
                f"{result.edge[0]} -> {result.edge[1]} at "
                f"{result.ndist:.1f} m (p={result.probability:.3f})"
            )

        if located:
            edge = located[0].edge
            print(f"when did it pass the middle of edge {edge}?")
            for result in queries.when(
                target.trajectory_id, edge, 0.5, alpha=0.2
            ):
                print(
                    f"  instance {result.instance_index}: t={result.time:.1f}s "
                    f"(p={result.probability:.3f})"
                )

        print(
            f"\nresident trajectories after querying: "
            f"{on_disk.cached_trajectory_count()} of "
            f"{on_disk.trajectory_count} (lazy loading works)"
        )

    os.remove(path)


if __name__ == "__main__":
    main()
