"""Persist an archive to disk and query it without loading it back.

Compresses a Chengdu-profile dataset across all cores (byte-identical
to a serial run), writes the versioned ``.utcq`` on-disk format plus
its ``.stiu`` index sidecar, then reopens the file warm — the StIU
index loads from the sidecar instead of being rebuilt — and answers
where/when queries straight off disk, one at a time and as a batch.
Only the touched trajectory records are ever decoded.

Run:  python examples/persist_and_query.py
"""

import os
import tempfile

from repro import (
    BatchQueryEngine,
    StIUIndex,
    UTCQQueryProcessor,
    WhereQuery,
    compress_parallel,
    load_dataset,
)
from repro.query.sidecar import save_index, sidecar_path_for


def main() -> None:
    # 1. dataset + multi-core compression
    network, trajectories = load_dataset("CD", trajectory_count=100, seed=42)
    archive, report = compress_parallel(
        network, trajectories, default_interval=10
    )
    print(
        f"compressed {report.trajectory_count} trajectories "
        f"({report.instance_count} instances) in "
        f"{report.elapsed_seconds:.2f}s with {report.workers} workers "
        f"({report.trajectories_per_second:.0f} traj/s)"
    )

    # 2. persist to the .utcq format
    path = os.path.join(tempfile.mkdtemp(), "cd.utcq")
    size = archive.save(path, provenance={"example": "persist_and_query"})
    print(
        f"wrote {path}: {size} bytes on disk "
        f"({archive.compressed_bytes} payload bytes, "
        f"ratio {archive.stats.total_ratio:.2f})"
    )

    # 3. persist the StIU index too, so every later open is warm
    save_index(StIUIndex(network, archive), path)
    print(f"wrote {sidecar_path_for(path)}: index sidecar")

    # 4. reopen warm: the index loads from the sidecar (no rebuild) and
    #    trajectories stream through a bounded LRU; queries decode only
    #    what they touch
    index = StIUIndex.over_file(network, path, cache_size=8)
    print(f"index loaded from sidecar: {index.loaded_from_sidecar}")
    with index.archive as on_disk:
        queries = UTCQQueryProcessor(network, on_disk, index)

        target = trajectories[0]
        t = (target.start_time + target.end_time) // 2
        print(f"\nwhere was trajectory {target.trajectory_id} at t={t}?")
        located = queries.where(target.trajectory_id, t, alpha=0.2)
        for result in located:
            print(
                f"  instance {result.instance_index}: edge "
                f"{result.edge[0]} -> {result.edge[1]} at "
                f"{result.ndist:.1f} m (p={result.probability:.3f})"
            )

        if located:
            edge = located[0].edge
            print(f"when did it pass the middle of edge {edge}?")
            for result in queries.when(
                target.trajectory_id, edge, 0.5, alpha=0.2
            ):
                print(
                    f"  instance {result.instance_index}: t={result.time:.1f}s "
                    f"(p={result.probability:.3f})"
                )

        print(
            f"\nresident trajectories after querying: "
            f"{on_disk.cached_trajectory_count()} of "
            f"{on_disk.trajectory_count} (lazy loading works)"
        )

        # 5. the same queries as one deduplicated batch
        engine = BatchQueryEngine(network, on_disk, index)
        batch = [
            WhereQuery(target.trajectory_id, t, 0.2),
            WhereQuery(target.trajectory_id, t, 0.2),  # duplicate: answered once
        ]
        batch_results = engine.run(batch)
        print(
            f"batch of {len(batch)} where-queries -> "
            f"{len(batch_results[0])} result(s), shared answer: "
            f"{batch_results[0] is batch_results[1]}"
        )

    os.remove(sidecar_path_for(path))
    os.remove(path)


if __name__ == "__main__":
    main()
